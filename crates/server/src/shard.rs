//! The sharded session registry: per-shard edit locks, durability and
//! LRU eviction.
//!
//! A [`crate::Service`] owns N [`Shard`]s; a session lives on the
//! shard named by a stable FNV-1a hash of its name ([`shard_index`] —
//! stable across processes, so a restart finds each session's records
//! in the same shard directory). Each shard owns, behind **one**
//! mutex:
//!
//! * its slice of the session map (resident engines and evicted
//!   checkpoint references),
//! * its monotonic edit sequence number,
//! * its durability state (WAL writer, checkpoint file ids,
//!   compaction countdown).
//!
//! Edits on different shards therefore never contend, while edits on
//! one shard serialize — which is also what makes the WAL order equal
//! the acknowledgement order. Reads never take the shard mutex beyond
//! name resolution (and not even that when the caller's session cache
//! is hot): they clone the session's published
//! `Arc<DynamicSnapshot>` and compute on it outside every lock.
//!
//! # Lock order
//!
//! `Shard::state` → `Session::profile` → `Session::snap`, always.
//! Eviction and compaction hold the shard mutex and take session
//! profile mutexes inside it; the pair-metric path takes a profile
//! mutex alone and never touches the shard mutex afterwards.
//!
//! # Durability
//!
//! With a data directory configured, every acknowledged lifecycle or
//! edit operation appends one [`WalRecord`] — synced before the
//! acknowledgement — and every `checkpoint_every` records the shard
//! compacts: stale sessions are checkpointed (atomic tmp+rename),
//! superseded checkpoint files deleted, and the WAL truncated to
//! empty. Recovery ([`Shard::open`]) loads the checkpoints, replays
//! the WAL's valid prefix seq-gated per session (a record is applied
//! only if its `seq` exceeds the session's checkpointed `last_seq`,
//! so eviction checkpoints never double-apply), truncates corruption
//! at the first fault, and ends with a full compaction — after a
//! restart the log is empty and every session's checkpoint is
//! current.

use crate::proto::{ErrorCode, Response, ShardStats, WirePolicy};
use crate::wal::{self, Checkpoint, WalError, WalOp, WalRecord, WalWriter};
use bucketrank_aggregate::dynamic::{DynamicProfile, DynamicSnapshot, VoterId};
use bucketrank_aggregate::{AggregateError, MedianPolicy};
use bucketrank_core::BucketOrder;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Stable shard map: FNV-1a over the session name, reduced mod the
/// shard count. Deliberately **not** the std hasher — the mapping must
/// survive process restarts and toolchain upgrades, because it names
/// the directory a session's durable records live in.
pub(crate) fn shard_index(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One named session: the live engine plus its published read view.
pub(crate) struct Session {
    /// Edit path: owned exclusively by one writer at a time.
    pub(crate) profile: Mutex<DynamicProfile>,
    /// Read path: the snapshot at the last successful edit (`None`
    /// while the session has no live voters).
    snap: RwLock<Option<Arc<DynamicSnapshot>>>,
    /// LRU clock value of the last touch (shard-issued, strictly
    /// increasing per touch).
    touched: AtomicU64,
}

impl Session {
    fn new(dp: DynamicProfile) -> Self {
        let snap = dp.snapshot().ok().map(Arc::new);
        Session {
            profile: Mutex::new(dp),
            snap: RwLock::new(snap),
            touched: AtomicU64::new(0),
        }
    }

    /// Republishes the snapshot after an edit (called with the edit
    /// mutex held, so publications are ordered with the edits).
    pub(crate) fn publish(&self, dp: &DynamicProfile) {
        let fresh = dp.snapshot().ok().map(Arc::new);
        *self.snap.write().expect("snapshot lock") = fresh;
    }

    /// The published read view, if any voter is live.
    pub(crate) fn read_view(&self) -> Option<Arc<DynamicSnapshot>> {
        self.snap.read().expect("snapshot lock").clone()
    }
}

/// Maps an engine failure to its typed wire error.
pub(crate) fn agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::NoInputs => ErrorCode::NoVoters,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        AggregateError::InvalidK { .. } => ErrorCode::InvalidK,
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::TooManyVoters { .. } => ErrorCode::TooManyVoters,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// A typed wire error.
pub(crate) fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn unknown_session(name: &str) -> Response {
    error(ErrorCode::UnknownSession, format!("no session named {name:?}"))
}

fn io_response(what: &str, e: &io::Error) -> Response {
    error(ErrorCode::BadRequest, format!("{what}: {e}"))
}

/// An edit against a named session, as the shard applies and logs it.
pub(crate) enum Edit {
    /// Push a voter.
    Push {
        /// The pushed ranking.
        ranking: BucketOrder,
    },
    /// Remove a live voter.
    Remove {
        /// The raw voter id.
        voter: u64,
    },
    /// Replace a live voter's ranking.
    Replace {
        /// The raw voter id.
        voter: u64,
        /// The replacement ranking.
        ranking: BucketOrder,
    },
}

/// A checkpoint file reference: its monotonic file id and the shard
/// sequence number its contents are current through.
#[derive(Clone, Copy)]
struct CkptRef {
    id: u64,
    seq: u64,
}

fn ckpt_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("ckpt-{id}.bin"))
}

/// A session slot: in memory, or evicted to its checkpoint file.
enum Slot {
    Resident {
        session: Arc<Session>,
        /// Shard sequence number of the session's last applied record
        /// (0 for memory-only shards, which write no records).
        last_seq: u64,
        /// The on-disk checkpoint covering this session, if any.
        ckpt: Option<CkptRef>,
    },
    Evicted {
        ckpt: CkptRef,
    },
}

struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    next_file_id: u64,
    checkpoint_every: u64,
    since_compact: u64,
}

struct ShardState {
    slots: HashMap<String, Slot>,
    /// The shard's monotonic edit sequence number (last issued).
    seq: u64,
    dur: Option<Durability>,
}

/// Per-shard monotonic counters, updated with atomics so paths that do
/// not hold the shard mutex (LRU touches) and the aggregating stats
/// reader never contend with the edit path.
#[derive(Default)]
pub(crate) struct ShardCounters {
    pub(crate) wal_records: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) recoveries: AtomicU64,
}

/// One shard; see the [module docs](self).
pub(crate) struct Shard {
    /// Resident-session cap for this shard.
    cap: usize,
    /// The service-wide cap, quoted in capacity error messages.
    global_cap: usize,
    /// LRU clock: bumped on every touch, never under the mutex.
    tick: AtomicU64,
    /// Bumped on every create/drop/evict/fault-in; callers holding a
    /// cached `Arc<Session>` revalidate against it so a cached read
    /// can never see a session object the registry has replaced.
    epoch: AtomicU64,
    counters: ShardCounters,
    state: Mutex<ShardState>,
}

impl Shard {
    /// A memory-only shard (no WAL, no checkpoints, no eviction — at
    /// capacity, creates are refused exactly as before sharding).
    pub(crate) fn new(cap: usize, global_cap: usize) -> Shard {
        Shard {
            cap,
            global_cap,
            tick: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            counters: ShardCounters::default(),
            state: Mutex::new(ShardState {
                slots: HashMap::new(),
                seq: 0,
                dur: None,
            }),
        }
    }

    /// Opens a durable shard over `dir`, recovering whatever a prior
    /// process left there: checkpoints are loaded, the WAL's valid
    /// prefix replayed seq-gated, corruption truncated at the first
    /// fault, and the shard fully compacted before serving.
    ///
    /// # Errors
    /// Real I/O failures only — corrupt records and checkpoints are
    /// typed, truncated and survived, never fatal.
    pub(crate) fn open(
        cap: usize,
        global_cap: usize,
        dir: PathBuf,
        checkpoint_every: u64,
    ) -> io::Result<Shard> {
        fs::create_dir_all(&dir)?;
        // Make the shard directory's own entry durable; the files
        // inside sync their entries as they are created/renamed.
        wal::sync_dir(&dir)?;
        // A tmp file is a checkpoint whose rename never happened —
        // dead by construction.
        let mut ckpts: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(&path);
            } else if let Some(id) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ckpts.push((id, path));
            }
        }
        let next_file_id = ckpts.iter().map(|&(id, _)| id + 1).max().unwrap_or(0);

        // Load checkpoints; on duplicate session names (a crash between
        // writing a fresh checkpoint and deleting the superseded one)
        // the higher last_seq wins. Corrupt checkpoint files are
        // skipped — the orphan cleanup below removes them.
        let mut by_name: HashMap<String, (u64, Checkpoint)> = HashMap::new();
        for (id, path) in ckpts {
            let ck = match Checkpoint::read(&path)? {
                Ok(ck) => ck,
                Err(_) => continue,
            };
            match by_name.get(&ck.name) {
                Some((_, held)) if held.last_seq >= ck.last_seq => {}
                _ => {
                    by_name.insert(ck.name.clone(), (id, ck));
                }
            }
        }

        struct Rebuilt {
            dp: DynamicProfile,
            last_seq: u64,
            ckpt: Option<CkptRef>,
        }
        let mut sessions: HashMap<String, Rebuilt> = HashMap::new();
        let mut seq = 0u64;
        for (name, (id, ck)) in by_name {
            let policy = match ck.policy {
                WirePolicy::Lower => MedianPolicy::Lower,
                WirePolicy::Upper => MedianPolicy::Upper,
            };
            let Ok(dp) = DynamicProfile::from_voters(ck.n as usize, policy, ck.voters, ck.next_id)
            else {
                // The file framed and decoded but its contents are
                // inconsistent (duplicate ids, id ≥ next_id): typed
                // corruption, skipped like a CRC failure.
                continue;
            };
            seq = seq.max(ck.last_seq);
            sessions.insert(
                name,
                Rebuilt {
                    dp,
                    last_seq: ck.last_seq,
                    ckpt: Some(CkptRef {
                        id,
                        seq: ck.last_seq,
                    }),
                },
            );
        }

        // Replay the WAL's valid prefix; stop — without panicking and
        // without applying anything further — at the first record that
        // is torn, corrupt, or inconsistent with the rebuilt state.
        let wal_path = dir.join("wal.log");
        let wal_len = fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        let scan = wal::scan_file(&wal_path)?;
        // A dropped session's checkpoint file is deleted the moment its
        // Drop record is acknowledged, so the log can hold edit records
        // for a session with no surviving anchor (compact, edit, drop:
        // the edits are in the log, the checkpoint is gone). The Drop
        // record that follows them proves their effects are
        // unobservable — map each name to its last drop seq so replay
        // skips those records instead of faulting and discarding every
        // acknowledged record after them.
        let mut drop_horizon: HashMap<String, u64> = HashMap::new();
        for rec in &scan.records {
            if let WalOp::Drop { name } = &rec.op {
                drop_horizon.insert(name.clone(), rec.seq);
            }
        }
        let total_records = scan.records.len();
        let mut fault_at: Option<usize> = None;
        let mut replay_fault: Option<WalError> = None;
        'replay: for (idx, rec) in scan.records.into_iter().enumerate() {
            seq = seq.max(rec.seq);
            let name = rec.op.session().to_owned();
            match rec.op {
                WalOp::Create { name, n, policy } => match sessions.get(&name) {
                    Some(r) if rec.seq <= r.last_seq => {}
                    Some(_) => {
                        replay_fault = Some(WalError::DuplicateCreate { seq: rec.seq, name });
                        fault_at = Some(idx);
                        break 'replay;
                    }
                    None => {
                        let policy = match policy {
                            WirePolicy::Lower => MedianPolicy::Lower,
                            WirePolicy::Upper => MedianPolicy::Upper,
                        };
                        sessions.insert(
                            name,
                            Rebuilt {
                                dp: DynamicProfile::new(n as usize, policy),
                                last_seq: rec.seq,
                                ckpt: None,
                            },
                        );
                    }
                },
                WalOp::Drop { name } => {
                    if let Some(r) = sessions.get(&name) {
                        if rec.seq > r.last_seq {
                            sessions.remove(&name);
                        }
                    }
                }
                op => {
                    let Some(r) = sessions.get_mut(&name) else {
                        if drop_horizon.get(&name).is_some_and(|&d| rec.seq < d) {
                            // The session these edits built was dropped
                            // later in this same log (which is why its
                            // checkpoint anchor is gone): every effect
                            // is unobservable, skipping is exact.
                            continue;
                        }
                        replay_fault = Some(WalError::UnknownSession { seq: rec.seq, name });
                        fault_at = Some(idx);
                        break 'replay;
                    };
                    if rec.seq <= r.last_seq {
                        continue;
                    }
                    let applied: Result<(), WalError> = match op {
                        WalOp::Push { voter, ranking, .. } => {
                            match r.dp.push_voter(ranking) {
                                Ok(id) if id.raw() == voter => Ok(()),
                                Ok(id) => {
                                    // The log says this push was issued
                                    // a different id than the engine
                                    // reproduces: retract it so the
                                    // surviving state is exactly the
                                    // record's predecessors.
                                    let _ = r.dp.remove_voter(id);
                                    Err(WalError::IdMismatch {
                                        seq: rec.seq,
                                        expected: voter,
                                        found: id.raw(),
                                    })
                                }
                                Err(e) => Err(WalError::Edit {
                                    seq: rec.seq,
                                    error: e,
                                }),
                            }
                        }
                        WalOp::Remove { voter, .. } => r
                            .dp
                            .remove_voter(VoterId::from_raw(voter))
                            .map(|_| ())
                            .map_err(|e| WalError::Edit {
                                seq: rec.seq,
                                error: e,
                            }),
                        WalOp::Replace { voter, ranking, .. } => r
                            .dp
                            .replace_voter(VoterId::from_raw(voter), ranking)
                            .map(|_| ())
                            .map_err(|e| WalError::Edit {
                                seq: rec.seq,
                                error: e,
                            }),
                        WalOp::Create { .. } | WalOp::Drop { .. } => unreachable!("handled above"),
                    };
                    match applied {
                        Ok(()) => r.last_seq = rec.seq,
                        Err(e) => {
                            replay_fault = Some(e);
                            fault_at = Some(idx);
                            break 'replay;
                        }
                    }
                }
            }
        }
        if replay_fault.is_none() {
            replay_fault = scan.corruption;
        }
        // Surface the fault for operators without failing startup: the
        // valid prefix stands, and the compaction below resets the log.
        // A torn tail is the expected residue of a crash mid-append (the
        // partial record was never acknowledged, nothing is lost); any
        // other fault discards a suffix that may hold acknowledged
        // records, so the whole log is preserved for post-mortem before
        // compaction truncates it.
        if let Some(fault) = &replay_fault {
            let unapplied = fault_at.map_or(0, |i| total_records - i);
            let tail_bytes = wal_len.saturating_sub(scan.valid_len);
            let benign_tear = matches!(fault, WalError::TornTail { .. }) && unapplied == 0;
            let preserved = if benign_tear {
                None
            } else {
                wal::preserve_corrupt(&wal_path)
            };
            let kept = match &preserved {
                Some(p) => format!("; log preserved at {}", p.display()),
                None if benign_tear => String::new(),
                None => "; log could NOT be preserved".to_owned(),
            };
            eprintln!(
                "bucketrank-server: WAL recovery truncated at a fault: {fault} \
                 ({unapplied} decoded records and {tail_bytes} trailing bytes discarded{kept})"
            );
        }

        let shard = Shard {
            cap,
            global_cap,
            tick: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            counters: ShardCounters::default(),
            state: Mutex::new(ShardState {
                slots: HashMap::new(),
                seq,
                dur: Some(Durability {
                    dir,
                    wal: WalWriter::open(&wal_path)?,
                    next_file_id,
                    checkpoint_every: checkpoint_every.max(1),
                    since_compact: 0,
                }),
            }),
        };
        let recovered = sessions.len() as u64;
        {
            let mut st = shard.state.lock().expect("shard lock");
            // Materialize every recovered session, then compact so the
            // WAL restarts empty with every checkpoint current — only
            // after that can sessions beyond the cap be evicted without
            // further writes.
            let mut names: Vec<String> = sessions.keys().cloned().collect();
            names.sort_unstable();
            for (name, r) in sessions {
                st.slots.insert(
                    name,
                    Slot::Resident {
                        session: Arc::new(Session::new(r.dp)),
                        last_seq: r.last_seq,
                        ckpt: r.ckpt,
                    },
                );
            }
            shard.compact_locked(&mut st)?;
            // Evict down to the cap, deterministically (reverse name
            // order goes to disk first); checkpoints are current, so
            // eviction here writes nothing.
            let mut resident = st
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Resident { .. }))
                .count();
            for name in names.iter().rev() {
                if resident <= shard.cap {
                    break;
                }
                if shard.evict_one(&mut st, name).is_ok() {
                    resident -= 1;
                }
            }
        }
        shard.counters.recoveries.store(recovered, Ordering::Relaxed);
        Ok(shard)
    }

    /// The capacity rejection. The budget is enforced per shard — the
    /// global `max_sessions` is split `ceil(max_sessions / shards)`
    /// ways by the stable name hash — so the message quotes both the
    /// shard's share and the configured budget rather than implying a
    /// single global counter.
    fn capacity_message(&self) -> String {
        if self.cap == self.global_cap {
            format!("server is at its {}-session capacity", self.global_cap)
        } else {
            format!(
                "session shard is at its {}-session share of the {}-session budget \
                 (the budget is split per shard by the session-name hash)",
                self.cap, self.global_cap
            )
        }
    }

    /// The lifecycle epoch; cached `Arc<Session>`s are valid while it
    /// is unchanged.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Marks a session as just-used for LRU purposes. Lock-free.
    pub(crate) fn touch(&self, session: &Session) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        session.touched.store(t, Ordering::Relaxed);
    }

    /// Number of resident sessions.
    pub(crate) fn resident(&self) -> usize {
        self.state
            .lock()
            .expect("shard lock")
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Resident { .. }))
            .count()
    }

    /// This shard's stats row.
    pub(crate) fn stats(&self) -> ShardStats {
        let st = self.state.lock().expect("shard lock");
        let (mut sessions, mut evicted) = (0u64, 0u64);
        for slot in st.slots.values() {
            match slot {
                Slot::Resident { .. } => sessions += 1,
                Slot::Evicted { .. } => evicted += 1,
            }
        }
        ShardStats {
            sessions,
            evicted,
            wal_records: self.counters.wal_records.load(Ordering::Relaxed),
            wal_bytes: st.dur.as_ref().map_or(0, |d| d.wal.bytes()),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            recoveries: self.counters.recoveries.load(Ordering::Relaxed),
        }
    }

    /// Creates a session (name/domain bounds are the caller's job).
    pub(crate) fn create(&self, name: &str, n: usize, policy: WirePolicy) -> Response {
        let mut st = self.state.lock().expect("shard lock");
        if st.slots.contains_key(name) {
            return error(
                ErrorCode::SessionExists,
                format!("session {name:?} already exists"),
            );
        }
        let resident = st
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Resident { .. }))
            .count();
        if resident >= self.cap {
            if st.dur.is_some() {
                if let Some(victim) = self.lru_victim(&st) {
                    if let Err(e) = self.evict_one(&mut st, &victim) {
                        return io_response("eviction checkpoint failed", &e);
                    }
                } else {
                    return error(ErrorCode::BadRequest, self.capacity_message());
                }
            } else {
                return error(ErrorCode::BadRequest, self.capacity_message());
            }
        }
        let mut last_seq = 0;
        if st.dur.is_some() {
            let rec = WalRecord {
                seq: st.seq + 1,
                op: WalOp::Create {
                    name: name.to_owned(),
                    n: n as u32,
                    policy,
                },
            };
            if let Err(e) = self.append_locked(&mut st, &rec) {
                return io_response("write-ahead log append failed", &e);
            }
            last_seq = st.seq;
        }
        let mp = match policy {
            WirePolicy::Lower => MedianPolicy::Lower,
            WirePolicy::Upper => MedianPolicy::Upper,
        };
        let session = Arc::new(Session::new(DynamicProfile::new(n, mp)));
        self.touch(&session);
        st.slots.insert(
            name.to_owned(),
            Slot::Resident {
                session,
                last_seq,
                ckpt: None,
            },
        );
        self.epoch.fetch_add(1, Ordering::Release);
        self.maybe_compact(&mut st);
        Response::SessionCreated
    }

    /// Drops a session, resident or evicted.
    pub(crate) fn drop_session(&self, name: &str) -> Response {
        let mut st = self.state.lock().expect("shard lock");
        let Some(slot) = st.slots.remove(name) else {
            return unknown_session(name);
        };
        if st.dur.is_some() {
            let rec = WalRecord {
                seq: st.seq + 1,
                op: WalOp::Drop {
                    name: name.to_owned(),
                },
            };
            if let Err(e) = self.append_locked(&mut st, &rec) {
                // Not acknowledged: the session stays.
                st.slots.insert(name.to_owned(), slot);
                return io_response("write-ahead log append failed", &e);
            }
            let ckpt = match &slot {
                Slot::Resident { ckpt, .. } => *ckpt,
                Slot::Evicted { ckpt } => Some(*ckpt),
            };
            if let (Some(ck), Some(dur)) = (ckpt, st.dur.as_ref()) {
                // Safe to delete eagerly: the synced Drop record above
                // both supersedes the checkpoint (a crash before this
                // delete replays the checkpoint, then drops it) and
                // anchors any pre-drop edit records still in the log
                // (replay skips edits that precede a later Drop, so
                // losing the checkpoint cannot fault the recovery of
                // sessions logged after this one). Deleting here — not
                // in compaction's orphan sweep — also closes the window
                // where a crash between WAL truncation and the sweep
                // would resurrect the dropped session from its
                // leftover checkpoint. Best effort regardless: a
                // survivor is superseded by the Drop record until the
                // sweep removes it.
                let _ = fs::remove_file(ckpt_file(&dur.dir, ck.id));
            }
        }
        self.epoch.fetch_add(1, Ordering::Release);
        self.maybe_compact(&mut st);
        Response::SessionDropped
    }

    /// Applies one edit: resolve (faulting an evicted session back
    /// in), log the record ahead of the state change, apply, publish.
    /// Failed edits log nothing and leave every layer untouched.
    pub(crate) fn edit(&self, name: &str, edit: Edit) -> Response {
        let mut st = self.state.lock().expect("shard lock");
        let session = match self.resolve_locked(&mut st, name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        self.touch(&session);
        let mut dp = session.profile.lock().expect("edit lock");
        if st.dur.is_some() {
            // Write-ahead order: validate exactly as the engine will,
            // log the record, then apply. The validations mirror the
            // engine's own checks (and their order), so the subsequent
            // apply cannot fail and the error bytes on the reject path
            // are identical to the memory-only service's.
            let checked: Result<(WalOp, Response), AggregateError> = match &edit {
                Edit::Push { ranking } => {
                    let n = dp.len();
                    if ranking.len() != n {
                        Err(AggregateError::DomainMismatch {
                            expected: n,
                            found: ranking.len(),
                        })
                    } else if dp.voters() >= DynamicProfile::MAX_VOTERS {
                        Err(AggregateError::TooManyVoters {
                            limit: DynamicProfile::MAX_VOTERS,
                        })
                    } else {
                        let voter = dp.next_push_id();
                        Ok((
                            WalOp::Push {
                                name: name.to_owned(),
                                voter,
                                ranking: ranking.clone(),
                            },
                            Response::VoterPushed { voter },
                        ))
                    }
                }
                Edit::Remove { voter } => {
                    if dp.get_voter(VoterId::from_raw(*voter)).is_none() {
                        Err(AggregateError::UnknownVoter { id: *voter })
                    } else {
                        Ok((
                            WalOp::Remove {
                                name: name.to_owned(),
                                voter: *voter,
                            },
                            Response::VoterRemoved,
                        ))
                    }
                }
                Edit::Replace { voter, ranking } => {
                    let n = dp.len();
                    if ranking.len() != n {
                        Err(AggregateError::DomainMismatch {
                            expected: n,
                            found: ranking.len(),
                        })
                    } else if dp.get_voter(VoterId::from_raw(*voter)).is_none() {
                        Err(AggregateError::UnknownVoter { id: *voter })
                    } else {
                        Ok((
                            WalOp::Replace {
                                name: name.to_owned(),
                                voter: *voter,
                                ranking: ranking.clone(),
                            },
                            Response::VoterReplaced,
                        ))
                    }
                }
            };
            let (op, ok_resp) = match checked {
                Ok(v) => v,
                Err(e) => return agg_error(&e),
            };
            let rec = WalRecord {
                seq: st.seq + 1,
                op,
            };
            if let Err(e) = self.append_locked(&mut st, &rec) {
                return io_response("write-ahead log append failed", &e);
            }
            let seq = st.seq;
            if let Some(Slot::Resident { last_seq, .. }) = st.slots.get_mut(name) {
                *last_seq = seq;
            }
            match apply_edit(&mut dp, edit) {
                Ok(_) => {
                    session.publish(&dp);
                    drop(dp);
                    self.maybe_compact(&mut st);
                    ok_resp
                }
                // Unreachable by the pre-validation above; answered
                // typed regardless (the stray record will fail replay
                // the same way and be truncated there).
                Err(e) => agg_error(&e),
            }
        } else {
            match apply_edit(&mut dp, edit) {
                Ok(resp) => {
                    session.publish(&dp);
                    resp
                }
                Err(e) => agg_error(&e),
            }
        }
    }

    /// Resolves a session for a read or pair-metric, faulting an
    /// evicted one back in.
    pub(crate) fn resolve(&self, name: &str) -> Result<Arc<Session>, Response> {
        let mut st = self.state.lock().expect("shard lock");
        let session = self.resolve_locked(&mut st, name)?;
        self.touch(&session);
        Ok(session)
    }

    fn resolve_locked(
        &self,
        st: &mut ShardState,
        name: &str,
    ) -> Result<Arc<Session>, Response> {
        match st.slots.get(name) {
            None => Err(unknown_session(name)),
            Some(Slot::Resident { session, .. }) => Ok(Arc::clone(session)),
            Some(Slot::Evicted { ckpt }) => {
                let ck = *ckpt;
                let resident = st
                    .slots
                    .values()
                    .filter(|s| matches!(s, Slot::Resident { .. }))
                    .count();
                if resident >= self.cap {
                    if let Some(victim) = self.lru_victim(st) {
                        self.evict_one(st, &victim)
                            .map_err(|e| io_response("eviction checkpoint failed", &e))?;
                    }
                }
                let dur = st.dur.as_ref().expect("evicted slots require durability");
                let path = ckpt_file(&dur.dir, ck.id);
                let loaded = Checkpoint::read(&path)
                    .map_err(|e| io_response("checkpoint read failed", &e))?
                    .map_err(|e| {
                        error(
                            ErrorCode::BadRequest,
                            format!("session {name:?} failed to restore: {e}"),
                        )
                    })?;
                let policy = match loaded.policy {
                    WirePolicy::Lower => MedianPolicy::Lower,
                    WirePolicy::Upper => MedianPolicy::Upper,
                };
                let dp = DynamicProfile::from_voters(
                    loaded.n as usize,
                    policy,
                    loaded.voters,
                    loaded.next_id,
                )
                .map_err(|e| {
                    error(
                        ErrorCode::BadRequest,
                        format!("session {name:?} failed to restore: {e}"),
                    )
                })?;
                let session = Arc::new(Session::new(dp));
                st.slots.insert(
                    name.to_owned(),
                    Slot::Resident {
                        session: Arc::clone(&session),
                        last_seq: ck.seq,
                        ckpt: Some(ck),
                    },
                );
                self.counters.recoveries.fetch_add(1, Ordering::Relaxed);
                self.epoch.fetch_add(1, Ordering::Release);
                Ok(session)
            }
        }
    }

    /// The resident session least recently touched.
    fn lru_victim(&self, st: &ShardState) -> Option<String> {
        st.slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Resident { session, .. } => {
                    Some((session.touched.load(Ordering::Relaxed), name))
                }
                Slot::Evicted { .. } => None,
            })
            .min()
            .map(|(_, name)| name.clone())
    }

    /// Evicts one resident session: checkpoint (unless the on-disk one
    /// is already current), then flip the slot to `Evicted`.
    fn evict_one(&self, st: &mut ShardState, name: &str) -> io::Result<()> {
        let Some(Slot::Resident {
            session,
            last_seq,
            ckpt,
        }) = st.slots.get(name)
        else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "evict target is not resident",
            ));
        };
        let (session, last_seq, old) = (Arc::clone(session), *last_seq, *ckpt);
        let fresh = match old {
            Some(ck) if ck.seq == last_seq => ck,
            _ => {
                let ck = self.write_checkpoint(st, name, &session, last_seq)?;
                if let (Some(prev), Some(dur)) = (old, st.dur.as_ref()) {
                    let _ = fs::remove_file(ckpt_file(&dur.dir, prev.id));
                }
                ck
            }
        };
        st.slots
            .insert(name.to_owned(), Slot::Evicted { ckpt: fresh });
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Writes a fresh checkpoint file for `session` and returns its
    /// reference. Takes the profile mutex (inner lock).
    fn write_checkpoint(
        &self,
        st: &mut ShardState,
        name: &str,
        session: &Session,
        last_seq: u64,
    ) -> io::Result<CkptRef> {
        let dur = st.dur.as_mut().expect("checkpoint requires durability");
        let id = dur.next_file_id;
        let path = ckpt_file(&dur.dir, id);
        let bytes = {
            let dp = session.profile.lock().expect("edit lock");
            let policy = match dp.policy() {
                MedianPolicy::Lower => WirePolicy::Lower,
                MedianPolicy::Upper => WirePolicy::Upper,
            };
            Checkpoint {
                name: name.to_owned(),
                n: dp.len() as u32,
                policy,
                next_id: dp.next_push_id(),
                last_seq,
                voters: dp
                    .voter_ids()
                    .into_iter()
                    .map(|vid| (vid.raw(), dp.get_voter(vid).expect("live voter").clone()))
                    .collect(),
            }
            .encode()
        };
        wal::write_atomic(&path, &bytes)?;
        dur.next_file_id += 1;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(CkptRef { id, seq: last_seq })
    }

    /// Appends one record, syncing before return; bumps the counters
    /// and the compaction countdown.
    fn append_locked(&self, st: &mut ShardState, rec: &WalRecord) -> io::Result<()> {
        let dur = st.dur.as_mut().expect("append requires durability");
        dur.wal.append(rec)?;
        dur.since_compact += 1;
        st.seq = rec.seq;
        self.counters.wal_records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts when the countdown says so. Compaction failures are
    /// swallowed (the WAL simply keeps growing — correctness never
    /// depends on compaction happening).
    fn maybe_compact(&self, st: &mut ShardState) {
        let due = match st.dur.as_ref() {
            Some(d) => d.since_compact >= d.checkpoint_every,
            None => false,
        };
        if due {
            let _ = self.compact_locked(st);
        }
    }

    /// Checkpoints every stale session, truncates the WAL to empty,
    /// and sweeps checkpoint files no slot references.
    fn compact_locked(&self, st: &mut ShardState) -> io::Result<()> {
        if st.dur.is_none() {
            return Ok(());
        }
        // Checkpoint sessions whose on-disk state lags their last
        // applied record; everything else is already current.
        let stale: Vec<(String, Arc<Session>, u64, Option<CkptRef>)> = st
            .slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Resident {
                    session,
                    last_seq,
                    ckpt,
                } if ckpt.is_none_or(|c| c.seq < *last_seq) => {
                    Some((name.clone(), Arc::clone(session), *last_seq, *ckpt))
                }
                _ => None,
            })
            .collect();
        for (name, session, last_seq, old) in stale {
            let fresh = self.write_checkpoint(st, &name, &session, last_seq)?;
            if let (Some(prev), Some(dur)) = (old, st.dur.as_ref()) {
                let _ = fs::remove_file(ckpt_file(&dur.dir, prev.id));
            }
            if let Some(Slot::Resident { ckpt, .. }) = st.slots.get_mut(&name) {
                *ckpt = Some(fresh);
            }
        }
        // Every slot now has a current checkpoint (or no edits at all
        // — impossible for durable slots past this point), so the log
        // is redundant.
        let dur = st.dur.as_mut().expect("checked above");
        dur.wal.truncate_to(0)?;
        dur.since_compact = 0;
        // Orphan sweep: files superseded by crashes or failed deletes.
        let referenced: std::collections::HashSet<u64> = st
            .slots
            .values()
            .filter_map(|slot| match slot {
                Slot::Resident { ckpt, .. } => ckpt.map(|c| c.id),
                Slot::Evicted { ckpt } => Some(ckpt.id),
            })
            .collect();
        let dur = st.dur.as_ref().expect("checked above");
        if let Ok(entries) = fs::read_dir(&dur.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
                if let Some(id) = name
                    .strip_prefix("ckpt-")
                    .and_then(|s| s.strip_suffix(".bin"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if !referenced.contains(&id) {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs one edit against the engine, mapping success to its reply.
fn apply_edit(dp: &mut DynamicProfile, edit: Edit) -> Result<Response, AggregateError> {
    match edit {
        Edit::Push { ranking } => dp
            .push_voter(ranking)
            .map(|id| Response::VoterPushed { voter: id.raw() }),
        Edit::Remove { voter } => dp
            .remove_voter(VoterId::from_raw(voter))
            .map(|_| Response::VoterRemoved),
        Edit::Replace { voter, ranking } => dp
            .replace_voter(VoterId::from_raw(voter), ranking)
            .map(|_| Response::VoterReplaced),
    }
}
