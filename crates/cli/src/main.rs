//! The `bucketrank` command-line tool. All logic lives in the library
//! crate (`bucketrank_cli`) so it can be unit-tested without a process
//! boundary; this binary only wires in the filesystem and exit codes.

use bucketrank_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let read_file = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path:?}: {e}")))
    };
    match run(&args, read_file) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("bucketrank: {e}");
            std::process::exit(2);
        }
    }
}
