//! Library backing the `bucketrank` command-line tool.
//!
//! The CLI works on *ranking files*: UTF-8 text, one partial ranking per
//! line in the bracket syntax of [`bucketrank_core::parse`]
//! (`[thai | sushi pizza | dim-sum]`), blank lines and `#` comments
//! ignored. All lines share one domain — the union of the labels — and
//! every line must mention every label (rank everything, with ties).
//!
//! Subcommands: `compare`, `aggregate`, `medrank`, `generate`; see
//! [`run`] and the per-command functions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bucketrank_access::medrank::medrank_top_k;
use bucketrank_aggregate::borda::average_rank_full;
use bucketrank_aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank_aggregate::dp::aggregate_optimal_bucketing;
use bucketrank_aggregate::kwiksort::kwiksort_best_of;
use bucketrank_aggregate::markov::{markov_aggregate, MarkovChain, MarkovOptions};
use bucketrank_aggregate::schulze::schulze;
use bucketrank_aggregate::median::{aggregate_full, aggregate_top_k, MedianPolicy};
use bucketrank_core::parse::{display_labeled, parse_labeled_ranking_strict};
use bucketrank_core::{BucketOrder, Domain, TypeSeq};
use bucketrank_metrics::{footrule, hausdorff, kendall};
use bucketrank_workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank_workloads::random::random_bucket_order;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;
use std::fmt::Write as _;

/// A CLI failure: human-readable message, nonzero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// A parsed ranking file: the shared domain and the rankings.
#[derive(Debug)]
pub struct RankingFile {
    /// Interned labels.
    pub domain: Domain,
    /// One bucket order per non-comment line.
    pub rankings: Vec<BucketOrder>,
}

/// Parses ranking-file *content* (see the module docs for the format).
///
/// # Errors
/// [`CliError`] describing the offending line.
pub fn parse_ranking_file(content: &str) -> Result<RankingFile, CliError> {
    let lines: Vec<(usize, &str)> = content
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if lines.is_empty() {
        return err("no rankings found in input");
    }
    // Pass 1: intern every label so all lines share the final domain.
    let mut domain = Domain::new();
    for &(lineno, line) in &lines {
        let inner = line
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| CliError(format!("line {lineno}: rankings look like [a b | c]")))?;
        for tok in inner.split(|c: char| c == '|' || c.is_whitespace()) {
            if !tok.is_empty() {
                domain.intern(tok);
            }
        }
    }
    // Pass 2: strict parse against the full domain.
    let mut rankings = Vec::with_capacity(lines.len());
    for &(lineno, line) in &lines {
        let r = parse_labeled_ranking_strict(line, &domain)
            .map_err(|e| CliError(format!("line {lineno}: {e}")))?;
        rankings.push(r);
    }
    Ok(RankingFile { domain, rankings })
}

/// `compare`: pairwise distance table under one or all metrics.
///
/// # Errors
/// [`CliError`] on unknown metrics or malformed input.
pub fn cmd_compare(content: &str, metric: &str) -> Result<String, CliError> {
    let file = parse_ranking_file(content)?;
    let metrics: Vec<AggMetric> = match metric {
        "all" => AggMetric::ALL.to_vec(),
        "kprof" => vec![AggMetric::KProf],
        "fprof" => vec![AggMetric::FProf],
        "khaus" => vec![AggMetric::KHaus],
        "fhaus" => vec![AggMetric::FHaus],
        other => return err(format!("unknown metric {other:?} (kprof|fprof|khaus|fhaus|all)")),
    };
    let mut out = String::new();
    let m = file.rankings.len();
    for metric in metrics {
        let _ = writeln!(out, "{}:", metric.name());
        for i in 0..m {
            let mut row = String::new();
            for j in 0..m {
                let d = pair_distance(metric, &file.rankings[i], &file.rankings[j])?;
                let _ = write!(row, "{:>8.1}", d);
            }
            let _ = writeln!(out, "  #{i:<3}{row}");
        }
    }
    Ok(out)
}

fn pair_distance(
    metric: AggMetric,
    a: &BucketOrder,
    b: &BucketOrder,
) -> Result<f64, CliError> {
    let v = match metric {
        AggMetric::KProf => kendall::kprof(a, b),
        AggMetric::FProf => footrule::fprof(a, b),
        AggMetric::KHaus => hausdorff::khaus(a, b).map(|x| x as f64),
        AggMetric::FHaus => hausdorff::fhaus(a, b).map(|x| x as f64),
    };
    v.map_err(|e| CliError(e.to_string()))
}

/// `aggregate`: combine the rankings with the chosen method.
///
/// # Errors
/// [`CliError`] on unknown methods or malformed input.
pub fn cmd_aggregate(content: &str, method: &str, top: Option<usize>) -> Result<String, CliError> {
    let file = parse_ranking_file(content)?;
    let inputs = &file.rankings;
    let output = match method {
        "median" => match top {
            Some(k) => aggregate_top_k(inputs, k, MedianPolicy::Lower),
            None => aggregate_full(inputs, MedianPolicy::Lower),
        },
        "fdagger" => aggregate_optimal_bucketing(inputs, MedianPolicy::Lower).map(|b| b.order),
        "borda" => average_rank_full(inputs),
        "mc4" => markov_aggregate(inputs, MarkovChain::Mc4, MarkovOptions::default()),
        "kwiksort" => kwiksort_best_of(inputs, 42, 8),
        "schulze" => schulze(inputs),
        other => {
            return err(format!(
                "unknown method {other:?} (median|fdagger|borda|mc4|kwiksort|schulze)"
            ))
        }
    }
    .map_err(|e| CliError(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(out, "{}", display_labeled(&output, &file.domain));
    let cost = total_cost_x2(AggMetric::FProf, &output, inputs)
        .map_err(|e| CliError(e.to_string()))?;
    let _ = writeln!(out, "# aggregate Fprof cost: {:.1}", cost as f64 / 2.0);
    Ok(out)
}

/// `medrank`: sorted-access top-k with access statistics.
///
/// # Errors
/// [`CliError`] on malformed input or `k` out of range.
pub fn cmd_medrank(content: &str, k: usize) -> Result<String, CliError> {
    let file = parse_ranking_file(content)?;
    let r = medrank_top_k(&file.rankings, k).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for (rank, &e) in r.top.iter().enumerate() {
        let label = file.domain.label(e).unwrap_or("?");
        let _ = writeln!(out, "{:>3}. {label}", rank + 1);
    }
    let n = file.rankings[0].len();
    let _ = writeln!(
        out,
        "# accesses: {} of a {}-entry full scan (depths: {:?})",
        r.stats.total_accesses(),
        n * file.rankings.len(),
        r.stats.sorted_depth
    );
    Ok(out)
}

/// `generate`: emit a random ranking file (for demos and testing).
///
/// # Errors
/// [`CliError`] on nonsensical parameters.
pub fn cmd_generate(
    n: usize,
    m: usize,
    seed: u64,
    mallows_theta: Option<f64>,
    top: Option<usize>,
) -> Result<String, CliError> {
    if n == 0 || m == 0 {
        return err("need n ≥ 1 and m ≥ 1");
    }
    let mut rng = Pcg32::seed_from_u64(seed);
    let rankings: Vec<BucketOrder> = match (mallows_theta, top) {
        (Some(theta), k) => {
            let alpha = match k {
                Some(k) => TypeSeq::top_k(n, k).map_err(|e| CliError(e.to_string()))?,
                None => TypeSeq::full(n),
            };
            let model = MallowsWithTies::new(Mallows::new(n, theta), alpha);
            model.sample_profile(&mut rng, m)
        }
        (None, Some(k)) => (0..m)
            .map(|_| bucketrank_workloads::random::random_top_k(&mut rng, n, k))
            .collect(),
        (None, None) => (0..m).map(|_| random_bucket_order(&mut rng, n)).collect(),
    };
    let mut out = String::new();
    for r in &rankings {
        let _ = writeln!(out, "{}", r.display().replace(['[', ']'], ""));
    }
    // Re-emit with brackets and e<N> labels for a self-contained file.
    let mut labeled = String::new();
    for r in &rankings {
        let mut line = String::from("[");
        for (bi, b) in r.buckets().iter().enumerate() {
            if bi > 0 {
                line.push_str(" | ");
            }
            for (i, e) in b.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "e{e}");
            }
        }
        line.push(']');
        let _ = writeln!(labeled, "{line}");
    }
    Ok(labeled)
}

/// `analyze`: structural report on a ranking file — tie structure,
/// pairwise distances, Condorcet analysis, and (for full rankings) a
/// fitted Mallows dispersion.
///
/// # Errors
/// [`CliError`] on malformed input.
pub fn cmd_analyze(content: &str) -> Result<String, CliError> {
    use bucketrank_aggregate::condorcet::MajorityGraph;
    use bucketrank_metrics::normalized::kprof_normalized;
    use bucketrank_workloads::fit::fit_mallows;

    let file = parse_ranking_file(content)?;
    let inputs = &file.rankings;
    let n = inputs[0].len();
    let m = inputs.len();
    let mut out = String::new();
    let _ = writeln!(out, "{m} rankings over {n} elements");

    // Tie structure.
    let full_count = inputs.iter().filter(|s| s.is_full()).count();
    let avg_buckets: f64 =
        inputs.iter().map(|s| s.num_buckets() as f64).sum::<f64>() / m as f64;
    let _ = writeln!(
        out,
        "tie structure: {full_count}/{m} full rankings; mean bucket count {avg_buckets:.1}"
    );

    // Pairwise dispersion under the normalized Kprof.
    let mut total = 0.0;
    let mut pairs = 0u32;
    let mut max_pair = (0.0f64, 0usize, 0usize);
    for i in 0..m {
        for j in i + 1..m {
            let d = kprof_normalized(&inputs[i], &inputs[j])
                .map_err(|e| CliError(e.to_string()))?;
            total += d;
            pairs += 1;
            if d > max_pair.0 {
                max_pair = (d, i, j);
            }
        }
    }
    if pairs > 0 {
        let _ = writeln!(
            out,
            "dispersion: mean normalized Kprof {:.3}; farthest pair #{} / #{} at {:.3}",
            total / pairs as f64,
            max_pair.1,
            max_pair.2,
            max_pair.0
        );
    }

    // Condorcet analysis.
    let g = MajorityGraph::build(inputs).map_err(|e| CliError(e.to_string()))?;
    match g.condorcet_winner() {
        Some(w) => {
            let _ = writeln!(
                out,
                "condorcet winner: {}",
                file.domain.label(w).unwrap_or("?")
            );
        }
        None => {
            let smith: Vec<&str> = g
                .smith_set()
                .into_iter()
                .map(|e| file.domain.label(e).unwrap_or("?"))
                .collect();
            let _ = writeln!(out, "no condorcet winner; smith set: {}", smith.join(", "));
        }
    }

    // Mallows fit for full-ranking profiles.
    if full_count == m {
        if let Some((reference, theta)) = fit_mallows(inputs) {
            let _ = writeln!(
                out,
                "mallows fit: θ ≈ {theta:.2} around {}",
                display_labeled(&reference, &file.domain)
            );
        }
    } else {
        let _ = writeln!(out, "mallows fit: skipped (profile has ties)");
    }
    Ok(out)
}

/// `query`: load a CSV catalog and run a preference query with MEDRANK.
///
/// Preference specs use a compact grammar, one `--prefer` each:
/// `attr:asc`, `attr:desc`, `attr:asc:bin=10`, `attr:in=thai;sushi`.
///
/// # Errors
/// [`CliError`] on malformed schema/preference specs or CSV.
pub fn cmd_query(
    csv_content: &str,
    schema_spec: &str,
    prefer_specs: &[String],
    k: usize,
    has_header: bool,
) -> Result<String, CliError> {
    use bucketrank_access::csv::{parse_schema, table_from_csv, CsvOptions};
    use bucketrank_access::db::{Binning, Direction, OrderSpec};
    use bucketrank_access::query::PreferenceQuery;

    let (names, kinds) = parse_schema(schema_spec).map_err(|e| CliError(e.to_string()))?;
    let table = table_from_csv(csv_content, &kinds, CsvOptions { has_header })
        .map_err(|e| CliError(e.to_string()))?;
    // Without a header, rename columns per the schema spec by rebuilding
    // the specs against c0.. names is not possible; instead we require
    // the header names to match the schema names when a header exists.
    if has_header {
        for n in &names {
            if table.schema().column(n).is_none() {
                return err(format!("schema column {n:?} not found in the CSV header"));
            }
        }
    }
    let name_for = |requested: &str| -> Result<String, CliError> {
        if has_header {
            Ok(requested.to_owned())
        } else {
            // Map schema-spec names onto positional c<i> columns.
            names
                .iter()
                .position(|n| n == requested)
                .map(|i| format!("c{i}"))
                .ok_or_else(|| CliError(format!("unknown attribute {requested:?}")))
        }
    };

    if prefer_specs.is_empty() {
        return err("query requires at least one --prefer");
    }
    let mut specs = Vec::with_capacity(prefer_specs.len());
    for p in prefer_specs {
        let parts: Vec<&str> = p.split(':').collect();
        let attr = name_for(parts[0].trim())?;
        let spec = match parts.get(1).map(|s| s.trim()) {
            Some("asc") | Some("desc") => {
                let dir = if parts[1].trim() == "asc" {
                    Direction::Asc
                } else {
                    Direction::Desc
                };
                let mut s = OrderSpec::numeric(attr, dir);
                if let Some(binpart) = parts.get(2) {
                    let w = binpart
                        .trim()
                        .strip_prefix("bin=")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|w| *w > 0.0)
                        .ok_or_else(|| CliError(format!("bad binning in {p:?}")))?;
                    s = s
                        .with_binning(Binning::Width(w))
                        .map_err(|e| CliError(e.to_string()))?;
                }
                s
            }
            Some(rest) if rest.starts_with("in=") => {
                let values = rest["in=".len()..].split(';').map(str::trim);
                OrderSpec::text_preference(attr, values)
            }
            _ => {
                return err(format!(
                    "bad preference {p:?} (use attr:asc, attr:desc[:bin=W], or attr:in=a;b)"
                ))
            }
        };
        specs.push(spec);
    }

    let query = PreferenceQuery::new(specs).with_k(k);
    let result = query.run(&table).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for (rank, &row) in result.top.iter().enumerate() {
        let mut cells = Vec::new();
        for (name, _) in table.schema().iter() {
            if let Some(v) = table.value(row as usize, name) {
                cells.push(match v {
                    bucketrank_access::db::AttrValue::Int(x) => x.to_string(),
                    bucketrank_access::db::AttrValue::Float(x) => format!("{x:.2}"),
                    bucketrank_access::db::AttrValue::Text(s) => s.clone(),
                });
            }
        }
        let _ = writeln!(out, "{:>3}. row {:<6} {}", rank + 1, row, cells.join(", "));
    }
    let _ = writeln!(
        out,
        "# accesses: {} of a {}-entry full scan",
        result.stats.total_accesses(),
        table.len() * query.specs().len()
    );
    Ok(out)
}

/// `serve`: host ranking sessions over TCP until a client sends the
/// wire `Shutdown` request, then drain and report traffic counters.
///
/// `addr_file`, when given, receives the bound address once listening —
/// the handshake scripts and tests use it with `--addr 127.0.0.1:0` to
/// discover the ephemeral port.
///
/// # Errors
/// [`CliError`] on nonsensical parameters or bind/write failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve(
    addr: &str,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    max_conns: Option<usize>,
    max_frame: Option<usize>,
    pipeline_depth: Option<usize>,
    addr_file: Option<&str>,
    shards: Option<usize>,
    max_sessions: Option<usize>,
    data_dir: Option<&str>,
    checkpoint_every: Option<u64>,
) -> Result<String, CliError> {
    use bucketrank_server::{Server, ServerConfig, MAX_SHARDS};

    let mut config = ServerConfig::default();
    if let Some(w) = workers {
        config.workers = w;
    }
    if let Some(d) = queue_depth {
        config.queue_depth = d;
    }
    if let Some(c) = max_conns {
        config.max_connections = c;
    }
    if let Some(f) = max_frame {
        config.max_frame = f;
    }
    if let Some(p) = pipeline_depth {
        config.pipeline_depth = p;
    }
    if let Some(s) = shards {
        config.shards = s;
    }
    if let Some(m) = max_sessions {
        config.max_sessions = m;
    }
    if let Some(c) = checkpoint_every {
        config.checkpoint_every = c;
    }
    config.data_dir = data_dir.map(std::path::PathBuf::from);
    if config.workers == 0 || config.queue_depth == 0 || config.max_connections == 0 {
        return err("serve needs --workers, --queue-depth, and --max-conns ≥ 1");
    }
    // A frame smaller than the length prefix + version/opcode header,
    // or a connection that may never have an op in flight, can serve
    // no request at all.
    if config.max_frame < 16 || config.pipeline_depth == 0 {
        return err("serve needs --max-frame ≥ 16 and --pipeline-depth ≥ 1");
    }
    if config.shards == 0 || config.shards > MAX_SHARDS {
        return err(format!("serve needs --shards in 1..={MAX_SHARDS}"));
    }
    if config.max_sessions == 0 || config.checkpoint_every == 0 {
        return err("serve needs --max-sessions and --checkpoint-every ≥ 1");
    }
    let server =
        Server::bind(addr, config).map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
    let local = server.local_addr();
    eprintln!("bucketrank serving on {local}");
    if let Some(path) = addr_file {
        std::fs::write(path, local.to_string())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    server.wait_shutdown_requested();
    let stats = server.shutdown();
    Ok(format!(
        "served {} requests over {} connections ({} busy rejections, {} protocol errors)\n",
        stats.requests, stats.connections, stats.rejected_busy, stats.protocol_errors
    ))
}

/// Entry point shared by `main` and the tests: parses the argument list
/// (without the program name) and returns the command's stdout text.
///
/// # Errors
/// [`CliError`] with a usage or failure message.
pub fn run(args: &[String], read_file: impl Fn(&str) -> Result<String, CliError>) -> Result<String, CliError> {
    let usage = "usage:\n  bucketrank compare <file> [--metric kprof|fprof|khaus|fhaus|all]\n  bucketrank aggregate <file> [--method median|fdagger|borda|mc4|kwiksort|schulze] [--top K]\n  bucketrank medrank <file> --top K\n  bucketrank analyze <file>\n  bucketrank query <data.csv> --schema a:int,b:text,… --prefer attr:asc[:bin=W] [--prefer attr:in=x;y]… [--top K] [--no-header]\n  bucketrank generate --n N --m M [--seed S] [--mallows THETA] [--top K]\n  bucketrank serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--max-conns N] [--max-frame BYTES] [--pipeline-depth N] [--addr-file PATH] [--shards N] [--max-sessions N] [--data-dir PATH] [--checkpoint-every N]\n    (--max-sessions is a resident-session budget split ceil(N/shards) per shard by the session-name hash)";
    let mut it = args.iter();
    let cmd = match it.next() {
        Some(c) => c.as_str(),
        None => return err(usage),
    };
    let rest: Vec<&String> = it.collect();
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let positional = || -> Option<&String> {
        // First argument that isn't a flag and isn't a flag's value.
        rest.iter().enumerate().find_map(|(i, a)| {
            let is_flag_value = i > 0 && rest[i - 1].starts_with("--");
            if !a.starts_with("--") && !is_flag_value {
                Some(*a)
            } else {
                None
            }
        })
    };

    match cmd {
        "compare" => {
            let path = positional().ok_or_else(|| CliError(usage.to_owned()))?;
            let content = read_file(path)?;
            cmd_compare(&content, flag("--metric").unwrap_or("all"))
        }
        "aggregate" => {
            let path = positional().ok_or_else(|| CliError(usage.to_owned()))?;
            let content = read_file(path)?;
            let top = match flag("--top") {
                Some(t) => Some(t.parse().map_err(|_| CliError("bad --top".into()))?),
                None => None,
            };
            cmd_aggregate(&content, flag("--method").unwrap_or("median"), top)
        }
        "medrank" => {
            let path = positional().ok_or_else(|| CliError(usage.to_owned()))?;
            let content = read_file(path)?;
            let k = flag("--top")
                .ok_or_else(|| CliError("medrank requires --top K".into()))?
                .parse()
                .map_err(|_| CliError("bad --top".into()))?;
            cmd_medrank(&content, k)
        }
        "analyze" => {
            let path = positional().ok_or_else(|| CliError(usage.to_owned()))?;
            let content = read_file(path)?;
            cmd_analyze(&content)
        }
        "query" => {
            let path = positional().ok_or_else(|| CliError(usage.to_owned()))?;
            let content = read_file(path)?;
            let schema = flag("--schema")
                .ok_or_else(|| CliError("query requires --schema".into()))?;
            // --prefer is repeatable: collect every occurrence.
            let prefers: Vec<String> = rest
                .iter()
                .enumerate()
                .filter(|(_, a)| a.as_str() == "--prefer")
                .filter_map(|(i, _)| rest.get(i + 1).map(|s| s.to_string()))
                .collect();
            let k = match flag("--top") {
                Some(t) => t.parse().map_err(|_| CliError("bad --top".into()))?,
                None => 1,
            };
            let has_header = !rest.iter().any(|a| a.as_str() == "--no-header");
            cmd_query(&content, schema, &prefers, k, has_header)
        }
        "generate" => {
            let n = flag("--n")
                .ok_or_else(|| CliError("generate requires --n".into()))?
                .parse()
                .map_err(|_| CliError("bad --n".into()))?;
            let m = flag("--m")
                .ok_or_else(|| CliError("generate requires --m".into()))?
                .parse()
                .map_err(|_| CliError("bad --m".into()))?;
            let seed = match flag("--seed") {
                Some(s) => s.parse().map_err(|_| CliError("bad --seed".into()))?,
                None => 42,
            };
            let theta = match flag("--mallows") {
                Some(t) => Some(t.parse().map_err(|_| CliError("bad --mallows".into()))?),
                None => None,
            };
            let top = match flag("--top") {
                Some(t) => Some(t.parse().map_err(|_| CliError("bad --top".into()))?),
                None => None,
            };
            cmd_generate(n, m, seed, theta, top)
        }
        "serve" => {
            let parse_opt = |name: &str| -> Result<Option<usize>, CliError> {
                match flag(name) {
                    Some(v) => v
                        .parse()
                        .map(Some)
                        .map_err(|_| CliError(format!("bad {name}"))),
                    None => Ok(None),
                }
            };
            let checkpoint_every = match flag("--checkpoint-every") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| CliError("bad --checkpoint-every".into()))?,
                ),
                None => None,
            };
            cmd_serve(
                flag("--addr").unwrap_or("127.0.0.1:7131"),
                parse_opt("--workers")?,
                parse_opt("--queue-depth")?,
                parse_opt("--max-conns")?,
                parse_opt("--max-frame")?,
                parse_opt("--pipeline-depth")?,
                flag("--addr-file"),
                parse_opt("--shards")?,
                parse_opt("--max-sessions")?,
                flag("--data-dir"),
                checkpoint_every,
            )
        }
        "--help" | "-h" | "help" => Ok(usage.to_owned()),
        other => err(format!("unknown command {other:?}\n{usage}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n# three diners\n[thai | sushi pizza]\n[sushi | thai pizza]\n[thai sushi | pizza]\n";

    fn no_fs(_: &str) -> Result<String, CliError> {
        err("no filesystem in tests")
    }

    #[test]
    fn parse_file_shares_domain() {
        let f = parse_ranking_file(SAMPLE).unwrap();
        assert_eq!(f.domain.len(), 3);
        assert_eq!(f.rankings.len(), 3);
        for r in &f.rankings {
            assert_eq!(r.len(), 3);
        }
    }

    #[test]
    fn parse_file_errors_mention_line() {
        let bad = "[a | b]\n[a b c]\n"; // line 2 mentions c, so line 1 misses it
        let e = parse_ranking_file(bad).unwrap_err();
        assert!(e.0.contains("line 1"), "{}", e.0);
        assert!(parse_ranking_file("\n# only comments\n").is_err());
        assert!(parse_ranking_file("not brackets").is_err());
    }

    #[test]
    fn compare_outputs_square_tables() {
        let out = cmd_compare(SAMPLE, "all").unwrap();
        for name in ["Kprof", "Fprof", "KHaus", "FHaus"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(cmd_compare(SAMPLE, "nope").is_err());
        let single = cmd_compare(SAMPLE, "kprof").unwrap();
        assert!(single.contains("Kprof") && !single.contains("FHaus"));
    }

    #[test]
    fn aggregate_methods_run() {
        for method in ["median", "fdagger", "borda", "mc4", "kwiksort", "schulze"] {
            let out = cmd_aggregate(SAMPLE, method, None).unwrap();
            assert!(out.contains("Fprof cost"), "{method}: {out}");
            assert!(out.starts_with('['), "{method}: {out}");
        }
        let top = cmd_aggregate(SAMPLE, "median", Some(1)).unwrap();
        assert!(top.contains('|'));
        assert!(cmd_aggregate(SAMPLE, "zzz", None).is_err());
    }

    #[test]
    fn medrank_reports_access_stats() {
        let out = cmd_medrank(SAMPLE, 2).unwrap();
        assert!(out.contains("1. "), "{out}");
        assert!(out.contains("accesses"), "{out}");
        assert!(cmd_medrank(SAMPLE, 9).is_err());
    }

    #[test]
    fn generate_round_trips_through_parser() {
        let text = cmd_generate(6, 4, 7, None, None).unwrap();
        let f = parse_ranking_file(&text).unwrap();
        assert_eq!(f.rankings.len(), 4);
        assert_eq!(f.domain.len(), 6);
        // Mallows + top-k mode.
        let text = cmd_generate(8, 3, 7, Some(1.0), Some(3)).unwrap();
        let f = parse_ranking_file(&text).unwrap();
        assert!(f.rankings.iter().all(|r| r.top_k_len() == Some(3)));
        assert!(cmd_generate(0, 3, 7, None, None).is_err());
    }

    const CSV: &str = "\
cuisine,distance,stars
thai,2.0,4
sushi,9.5,5
thai,14.0,3
pizza,3.5,4
";

    #[test]
    fn query_over_csv() {
        let prefers = vec![
            "cuisine:in=thai;sushi".to_owned(),
            "distance:asc:bin=10".to_owned(),
            "stars:desc".to_owned(),
        ];
        let out = cmd_query(CSV, "cuisine:text,distance:float,stars:int", &prefers, 2, true)
            .unwrap();
        assert!(out.contains("1. row"), "{out}");
        assert!(out.contains("accesses"), "{out}");
        // The close thai place should win.
        assert!(out.lines().next().unwrap().contains("thai"), "{out}");
    }

    #[test]
    fn query_without_header_maps_schema_names() {
        let data = "thai,2.0,4\nsushi,9.5,5\n";
        let prefers = vec!["stars:desc".to_owned()];
        let out = cmd_query(data, "cuisine:text,distance:float,stars:int", &prefers, 1, false)
            .unwrap();
        assert!(out.contains("sushi"), "{out}");
    }

    #[test]
    fn query_errors() {
        assert!(cmd_query(CSV, "bad schema", &["x:asc".into()], 1, true).is_err());
        assert!(cmd_query(CSV, "cuisine:text,distance:float,stars:int", &[], 1, true).is_err());
        assert!(cmd_query(
            CSV,
            "cuisine:text,distance:float,stars:int",
            &["stars:sideways".to_owned()],
            1,
            true
        )
        .is_err());
        assert!(cmd_query(
            CSV,
            "cuisine:text,distance:float,stars:int",
            &["distance:asc:bin=-4".to_owned()],
            1,
            true
        )
        .is_err());
        // Schema column missing from the header.
        assert!(cmd_query(CSV, "zip:int,distance:float,stars:int", &["zip:asc".into()], 1, true)
            .is_err());
    }

    #[test]
    fn analyze_reports_structure() {
        let out = cmd_analyze(SAMPLE).unwrap();
        assert!(out.contains("3 rankings over 3 elements"), "{out}");
        assert!(out.contains("dispersion"), "{out}");
        assert!(out.contains("condorcet") || out.contains("smith"), "{out}");
        assert!(out.contains("skipped (profile has ties)"), "{out}");
        // Full-ranking profile gets a Mallows fit.
        let full = "[a | b | c]\n[a | c | b]\n[b | a | c]\n[a | b | c]\n";
        let out = cmd_analyze(full).unwrap();
        assert!(out.contains("mallows fit: θ"), "{out}");
    }

    #[test]
    fn run_dispatches_analyze() {
        let reader = |_: &str| Ok(SAMPLE.to_owned());
        let args: Vec<String> = vec!["analyze".into(), "f.txt".into()];
        assert!(run(&args, reader).unwrap().contains("rankings over"));
    }

    #[test]
    fn run_dispatches_query() {
        let args: Vec<String> =
            "query data.csv --schema cuisine:text,distance:float,stars:int --prefer stars:desc --prefer distance:asc:bin=10 --top 2"
                .split(' ')
                .map(String::from)
                .collect();
        let reader = |_: &str| Ok(CSV.to_owned());
        let out = run(&args, reader).unwrap();
        assert!(out.contains("1. row"), "{out}");
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn serve_runs_until_wire_shutdown() {
        use bucketrank_server::Client;
        use std::time::Duration;

        let addr_file = std::env::temp_dir().join(format!(
            "bucketrank-cli-serve-{}.addr",
            std::process::id()
        ));
        let addr_file_str = addr_file.to_string_lossy().into_owned();
        let args: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--addr-file",
            &addr_file_str,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let handle = std::thread::spawn(move || run(&args, no_fs));

        // Wait for the addr file to appear, then drive a round trip.
        let mut addr = None;
        for _ in 0..200 {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(a) = text.trim().parse() {
                    addr = Some(a);
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let addr = addr.expect("server never published its address");
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        client.shutdown_server().unwrap();

        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("served"), "{out}");
        let _ = std::fs::remove_file(&addr_file);

        // Parameter validation is immediate, not deferred to bind.
        let serve = |workers, max_frame, pipeline, shards, sessions, ckpt| {
            cmd_serve(
                "127.0.0.1:0",
                workers,
                None,
                None,
                max_frame,
                pipeline,
                None,
                shards,
                sessions,
                None,
                ckpt,
            )
        };
        assert!(serve(Some(0), None, None, None, None, None).is_err());
        assert!(serve(None, Some(4), None, None, None, None).is_err());
        assert!(serve(None, None, Some(0), None, None, None).is_err());
        assert!(serve(None, None, None, Some(0), None, None).is_err());
        assert!(serve(None, None, None, Some(100_000), None, None).is_err());
        assert!(serve(None, None, None, None, Some(0), None).is_err());
        assert!(serve(None, None, None, None, None, Some(0)).is_err());
    }

    #[test]
    fn run_dispatches_and_reports_usage() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert!(run(&[], no_fs).is_err());
        assert!(run(&args("help"), no_fs).unwrap().contains("usage"));
        assert!(run(&args("frobnicate"), no_fs).is_err());
        // generate needs no file access.
        let out = run(&args("generate --n 4 --m 2 --seed 1"), no_fs).unwrap();
        assert_eq!(out.lines().count(), 2);
        // compare via injected file reader.
        let reader = |_: &str| Ok(SAMPLE.to_owned());
        let out = run(&args("compare rankings.txt --metric fprof"), reader).unwrap();
        assert!(out.contains("Fprof"));
        let out = run(&args("medrank rankings.txt --top 1"), reader).unwrap();
        assert!(out.contains("1. "));
        let out = run(&args("aggregate rankings.txt --method fdagger"), reader).unwrap();
        assert!(out.contains("Fprof cost"));
    }
}
