//! Local Kemenization (Dwork et al., WWW 2001): a cheap post-pass that
//! makes a full ranking *locally* Kemeny-optimal — no adjacent swap can
//! reduce the aggregate `Kprof` objective. Used to strengthen heuristic
//! baselines in the quality experiments.

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::BucketOrder;

/// Repeatedly bubbles each element upward while a strict majority
/// preference says the swap reduces `Σ_i Kprof(·, σ_i)`; terminates at a
/// locally Kemeny-optimal full ranking.
///
/// Swapping adjacent `a` (ahead) and `b` changes the objective by
/// `cost(b ahead of a) − cost(a ahead of b)`, where an input contributes
/// `1` (×2 scale: `2`) when it strictly prefers the element placed
/// behind, and `1/2` when it ties the pair. The swap is made when the
/// change is strictly negative.
///
/// Builds the shared [`ProfileTally`] internally (`O(m·n²)` once), after
/// which every adjacent-swap test is an `O(1)` delta read; callers that
/// already hold a tally should use [`local_kemenize_with_tally`].
///
/// # Errors
/// [`AggregateError::NotFullRanking`] if `candidate` has ties;
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn local_kemenize(
    candidate: &BucketOrder,
    inputs: &[BucketOrder],
) -> Result<BucketOrder, AggregateError> {
    check_inputs(inputs)?;
    local_kemenize_with_tally(candidate, &ProfileTally::build(inputs)?)
}

/// [`local_kemenize`] over a prebuilt pairwise tally: `O(n²)` worst
/// case, independent of the number of voters.
///
/// # Errors
/// [`AggregateError::NotFullRanking`] if `candidate` has ties;
/// [`AggregateError::DomainMismatch`] if the candidate's domain differs
/// from the tally's.
pub fn local_kemenize_with_tally(
    candidate: &BucketOrder,
    tally: &ProfileTally,
) -> Result<BucketOrder, AggregateError> {
    let n = tally.len();
    if candidate.len() != n {
        return Err(AggregateError::DomainMismatch {
            expected: n,
            found: candidate.len(),
        });
    }
    let mut perm = candidate
        .as_permutation()
        .ok_or(AggregateError::NotFullRanking)?;

    // Insertion-sort style: bubble each element left while beneficial.
    for i in 1..n {
        let mut j = i;
        while j > 0 {
            let ahead = perm[j - 1];
            let here = perm[j];
            // Swap if the tally's adjacent-swap delta is negative.
            if tally.swap_delta_x2(ahead, here) < 0 {
                perm.swap(j - 1, j);
                j -= 1;
            } else {
                break;
            }
        }
    }
    Ok(BucketOrder::from_permutation(&perm).expect("permutation preserved"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{total_cost_x2, AggMetric};

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn never_increases_cost_and_is_locally_optimal() {
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[2, 1, 4, 3]),
            keys(&[1, 3, 2, 4]),
        ];
        let bad = BucketOrder::from_permutation(&[3, 2, 1, 0]).unwrap();
        let before = total_cost_x2(AggMetric::KProf, &bad, &inputs).unwrap();
        let fixed = local_kemenize(&bad, &inputs).unwrap();
        let after = total_cost_x2(AggMetric::KProf, &fixed, &inputs).unwrap();
        assert!(after <= before);
        // No adjacent swap improves further.
        let perm = fixed.as_permutation().unwrap();
        for i in 0..perm.len() - 1 {
            let mut sw = perm.clone();
            sw.swap(i, i + 1);
            let alt = BucketOrder::from_permutation(&sw).unwrap();
            assert!(total_cost_x2(AggMetric::KProf, &alt, &inputs).unwrap() >= after);
        }
    }

    #[test]
    fn unanimous_input_is_fixed_point() {
        let s = BucketOrder::from_permutation(&[1, 0, 2]).unwrap();
        let inputs = vec![s.clone(), s.clone()];
        let out = local_kemenize(&s, &inputs).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn recovers_majority_order_from_reversed_start() {
        let s = BucketOrder::from_permutation(&[0, 1, 2]).unwrap();
        let inputs = vec![s.clone(), s.clone(), s.reverse()];
        let out = local_kemenize(&s.reverse(), &inputs).unwrap();
        assert_eq!(out.as_permutation(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn rejects_tied_candidate() {
        let c = BucketOrder::trivial(3);
        let inputs = vec![keys(&[1, 2, 3])];
        assert!(matches!(
            local_kemenize(&c, &inputs),
            Err(AggregateError::NotFullRanking)
        ));
    }

    #[test]
    fn works_with_tied_inputs() {
        let inputs = vec![keys(&[1, 1, 2]), keys(&[2, 1, 1])];
        let start = BucketOrder::from_permutation(&[2, 1, 0]).unwrap();
        let out = local_kemenize(&start, &inputs).unwrap();
        assert!(out.is_full());
    }
}
