//! Average-rank (Borda-style) aggregation and the best-of-inputs baseline.
//!
//! The paper contrasts the median with "the most natural heuristic based
//! on average ranks" (Section 1): averaging is not instance-optimal in the
//! sorted-access model (every list must be read in full) and enjoys no
//! approximation guarantee under the `L1` objectives, but it is the
//! classical baseline. The best-of-inputs rule is the "trivial" factor-2
//! baseline of footnote 4: one of the input rankings always 2-approximates
//! the optimal aggregation.

use crate::cost::AggMetric;
use crate::error::check_inputs;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_metrics::batch;

/// Average-rank aggregation: rank elements by the **sum** of their
/// positions across inputs (equivalent to the mean, but exact), ties kept
/// as buckets.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn average_rank(inputs: &[BucketOrder]) -> Result<BucketOrder, AggregateError> {
    let n = check_inputs(inputs)?;
    let mut sums = vec![0i64; n];
    for s in inputs {
        for e in 0..n as ElementId {
            sums[e as usize] += s.position(e).half_units();
        }
    }
    Ok(BucketOrder::from_keys(&sums))
}

/// Average-rank aggregation refined to a full ranking (ties broken by
/// element id).
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn average_rank_full(inputs: &[BucketOrder]) -> Result<BucketOrder, AggregateError> {
    Ok(average_rank(inputs)?.arbitrary_full_refinement())
}

/// The best input as an aggregation: returns `(index, cost_x2)` of the
/// input ranking minimizing `Σ_i d(σ_j, σ_i)` under `metric`.
///
/// Footnote 4: because `d` is a metric, the best input is always within a
/// factor 2 of the optimal aggregation — the "trivial" baseline that the
/// median algorithm is designed to beat in both quality and access cost.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn best_input(
    inputs: &[BucketOrder],
    metric: AggMetric,
) -> Result<(usize, u64), AggregateError> {
    check_inputs(inputs)?;
    // One pairwise matrix over prepared kernels (each input prepared
    // once) instead of m full `total_cost_x2` sweeps; the medoid's
    // lowest-total, lowest-index tie-breaking matches the old loop.
    let (bm, scale) = metric.batch_metric();
    let mx = batch::pairwise_matrix(inputs, bm)?;
    let (j, c) = mx.medoid().expect("inputs nonempty");
    Ok((j, scale * c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn average_rank_simple() {
        // Element 2 has the best total position.
        let inputs = vec![keys(&[3, 2, 1]), keys(&[2, 3, 1]), keys(&[1, 3, 2])];
        let avg = average_rank(&inputs).unwrap();
        assert_eq!(avg.bucket_index(2), 0);
    }

    #[test]
    fn average_rank_keeps_ties() {
        // Two elements with identical position multisets tie.
        let inputs = vec![keys(&[1, 1, 2]), keys(&[2, 2, 1])];
        let avg = average_rank(&inputs).unwrap();
        assert!(avg.is_tied(0, 1));
        let full = average_rank_full(&inputs).unwrap();
        assert!(full.is_full());
    }

    #[test]
    fn best_input_is_two_approximation() {
        use crate::exact::optimal_partial_ranking;
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[4, 3, 2, 1]),
            keys(&[2, 1, 4, 3]),
            keys(&[1, 1, 2, 2]),
        ];
        for metric in AggMetric::ALL {
            let (j, c) = best_input(&inputs, metric).unwrap();
            assert!(j < inputs.len());
            let (_, opt) = optimal_partial_ranking(&inputs, metric).unwrap();
            assert!(c <= 2 * opt, "{}: {c} > 2·{opt}", metric.name());
        }
    }

    #[test]
    fn errors() {
        assert!(average_rank(&[]).is_err());
        assert!(best_input(&[], AggMetric::FProf).is_err());
    }
}
