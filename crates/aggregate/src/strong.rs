//! Strong near-optimality (Appendix A.6.3: Lemma 34, Theorems 33 and 35).
//!
//! A typed output `σ` (say a top-k list) is *nearly optimal in the strong
//! sense* when it is the type-α projection `⟨σ'⟩_α` of some partial
//! ranking `σ'` that is itself nearly optimal against **all** partial
//! rankings — i.e. the top-k list isn't just cheap, it reads off the top
//! of a globally good aggregate. Theorem 33 shows strong optimality
//! implies the weak kind (with constant `2c + 1`); Theorem 35 shows
//! median aggregation achieves it.

use crate::dp::optimal_bucketing;
use crate::median::{median_positions, MedianPolicy};
use crate::AggregateError;
use bucketrank_core::consistent::{consistent_with, induced_ranking, project_to_type};
use bucketrank_core::refine::star;
use bucketrank_core::{BucketOrder, TypeSeq};

/// A strongly near-optimal typed aggregate: the `output` of the requested
/// type together with the globally near-optimal `witness` it projects
/// from (`output ∈ ⟨witness⟩_α`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrongAggregate {
    /// The type-α output (e.g. the top-k list handed to the user).
    pub output: BucketOrder,
    /// The witness `σ'`: a partial ranking within factor 2 (partial
    /// ranking inputs) / 3 (general) of every partial ranking, of which
    /// `output` is the type-α projection.
    pub witness: BucketOrder,
}

/// Lemma 34, constructively: given a score vector's induced order and a
/// target consistent order `sigma ∈ ⟨f⟩_α`, produce `σ' ∈ ⟨f⟩_β` with
/// `sigma ∈ ⟨σ'⟩_α`.
///
/// The construction refines `sigma` by the induced ranking `f̄` (the
/// common refinement `ρ` of the lemma's proof) and projects `ρ` onto
/// type `β`.
///
/// # Errors
/// [`AggregateError::DomainMismatch`] /
/// [`AggregateError::TypeSizeMismatch`].
pub fn lemma34_witness(
    f: &[bucketrank_core::Pos],
    sigma: &BucketOrder,
    beta: &TypeSeq,
) -> Result<BucketOrder, AggregateError> {
    let f_bar = induced_ranking(f);
    // ρ refines both σ and f̄ (well-defined because σ is consistent with f).
    let rho = star(&f_bar, sigma)?;
    Ok(project_to_type(&rho.positions(), beta)?)
}

/// Theorem 35: median aggregation with strong optimality. Returns the
/// type-α output together with the factor-2/3 witness `σ'` (whose type is
/// chosen optimally by the Figure-1 dynamic program).
///
/// Postconditions (asserted in tests):
/// * `output` has type `alpha` and is consistent with the median vector;
/// * `output ∈ ⟨witness⟩_α` — the output is the witness's projection;
/// * `L1(witness, f)` is minimal over all partial rankings (the `f†`
///   guarantee), hence `witness` is within factor 2 of any
///   partial-ranking aggregation when the inputs are partial rankings.
///
/// # Errors
/// [`AggregateError::NoInputs`], [`AggregateError::DomainMismatch`], or
/// [`AggregateError::TypeSizeMismatch`].
pub fn aggregate_to_type_strong(
    inputs: &[BucketOrder],
    alpha: &TypeSeq,
    policy: MedianPolicy,
) -> Result<StrongAggregate, AggregateError> {
    let f = median_positions(inputs, policy)?;
    let output = project_to_type(&f, alpha)?;
    // β = the type of f†, the L1-closest partial ranking to f.
    let beta = optimal_bucketing(&f).order.type_seq();
    let witness = lemma34_witness(&f, &output, &beta)?;
    debug_assert!(
        consistent_with(&witness.positions(), &output).unwrap_or(false),
        "output must be consistent with the witness"
    );
    Ok(StrongAggregate { output, witness })
}

/// Convenience wrapper: strongly near-optimal top-k aggregation
/// (the strengthened form of Theorem 9 noted in Appendix A.6.3).
///
/// # Errors
/// As [`aggregate_to_type_strong`], plus [`AggregateError::InvalidK`].
pub fn aggregate_top_k_strong(
    inputs: &[BucketOrder],
    k: usize,
    policy: MedianPolicy,
) -> Result<StrongAggregate, AggregateError> {
    let n = crate::error::check_inputs(inputs)?;
    let alpha = TypeSeq::top_k(n, k)?;
    aggregate_to_type_strong(inputs, &alpha, policy)
}

/// Whether `output ∈ ⟨witness⟩_α`: `output` has type `alpha` and is
/// consistent with the witness's positions — the defining condition of
/// strong near-optimality once the witness's own near-optimality is
/// known.
///
/// # Errors
/// [`AggregateError::DomainMismatch`].
pub fn is_projection_of(
    output: &BucketOrder,
    witness: &BucketOrder,
    alpha: &TypeSeq,
) -> Result<bool, AggregateError> {
    if output.len() != witness.len() {
        return Err(AggregateError::DomainMismatch {
            expected: witness.len(),
            found: output.len(),
        });
    }
    Ok(&output.type_seq() == alpha
        && consistent_with(&witness.positions(), output).expect("domains checked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{total_cost_x2, AggMetric};
    use crate::exact::{optimal_of_type, optimal_partial_ranking};
    use bucketrank_core::Pos;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    fn pos_vec(vals: &[i64]) -> Vec<Pos> {
        vals.iter().map(|&v| Pos::from_half_units(v)).collect()
    }

    #[test]
    fn lemma34_construction_properties() {
        let f = pos_vec(&[2, 2, 6, 6, 9]);
        let alpha = TypeSeq::top_k(5, 2).unwrap();
        let sigma = project_to_type(&f, &alpha).unwrap();
        for beta in TypeSeq::all_types(5) {
            let w = lemma34_witness(&f, &sigma, &beta).unwrap();
            // σ' ∈ ⟨f⟩_β …
            assert_eq!(w.type_seq(), beta);
            assert!(consistent_with(&f, &w).unwrap(), "beta = {beta}");
            // … and σ ∈ ⟨σ'⟩_α.
            assert!(is_projection_of(&sigma, &w, &alpha).unwrap(), "beta = {beta}");
        }
    }

    #[test]
    fn strong_aggregate_postconditions() {
        let inputs = [
            keys(&[1, 1, 2, 3, 3]),
            keys(&[2, 1, 1, 3, 2]),
            keys(&[1, 2, 2, 2, 3]),
        ];
        let alpha = TypeSeq::top_k(5, 2).unwrap();
        let s = aggregate_to_type_strong(&inputs, &alpha, MedianPolicy::Lower).unwrap();
        assert!(is_projection_of(&s.output, &s.witness, &alpha).unwrap());
        // Witness achieves the Theorem 10 factor-2 bound.
        let wc = total_cost_x2(AggMetric::FProf, &s.witness, &inputs).unwrap();
        let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
        assert!(wc <= 2 * opt, "{wc} > 2·{opt}");
        // Output achieves the Theorem 9 factor-3 bound for its type.
        let oc = total_cost_x2(AggMetric::FProf, &s.output, &inputs).unwrap();
        let (_, opt_a) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
        assert!(oc <= 3 * opt_a, "{oc} > 3·{opt_a}");
    }

    #[test]
    fn strong_top_k_randomized() {
        use bucketrank_workloads_shim::random_profile;
        // Randomized sweep (deterministic LCG to avoid a rand dev-dep
        // cycle) over small domains, Theorem 33's (2c+1) bound with c = 2:
        // output within 5× of the optimal same-type aggregation — and in
        // practice far closer.
        for seed in 0..40u64 {
            let (inputs, n) = random_profile(seed);
            let k = (n / 2).max(1);
            let s = aggregate_top_k_strong(&inputs, k, MedianPolicy::Lower).unwrap();
            let alpha = TypeSeq::top_k(n, k).unwrap();
            assert!(is_projection_of(&s.output, &s.witness, &alpha).unwrap());
            let oc = total_cost_x2(AggMetric::FProf, &s.output, &inputs).unwrap();
            let (_, opt_a) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            assert!(oc <= 3 * opt_a, "seed {seed}: {oc} > 3·{opt_a}");
        }
    }

    /// Tiny deterministic profile generator local to these tests.
    mod bucketrank_workloads_shim {
        use super::*;

        pub fn random_profile(seed: u64) -> (Vec<BucketOrder>, usize) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move |m: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % m
            };
            let n = (next(4) + 3) as usize; // 3..=6
            let m = (next(3) * 2 + 3) as usize; // 3, 5, 7
            let inputs = (0..m)
                .map(|_| {
                    let ks: Vec<i64> = (0..n).map(|_| next(3) as i64).collect();
                    BucketOrder::from_keys(&ks)
                })
                .collect();
            (inputs, n)
        }
    }

    #[test]
    fn projection_check_rejects_wrong_type_or_inconsistency() {
        let w = keys(&[1, 2, 2, 3]);
        let alpha = TypeSeq::top_k(4, 1).unwrap();
        let good = project_to_type(&w.positions(), &alpha).unwrap();
        assert!(is_projection_of(&good, &w, &alpha).unwrap());
        // Wrong type.
        let full = BucketOrder::identity(4);
        assert!(!is_projection_of(&full, &w, &alpha).unwrap());
        // Right type, inconsistent order (worst element on top).
        let bad = BucketOrder::top_k(4, &[3]).unwrap();
        assert!(!is_projection_of(&bad, &w, &alpha).unwrap());
        // Domain mismatch.
        let other = BucketOrder::trivial(3);
        assert!(is_projection_of(&other, &w, &alpha).is_err());
    }
}
