//! Median-rank aggregation (Section 6).
//!
//! Lemma 8: for score vectors `f_1, …, f_m`, any per-element median `f`
//! minimizes `Σ_i L1(g, f_i)` over all functions `g`. The aggregation
//! algorithms here compute such an `f` from the inputs' position vectors
//! and then shape it into a top-k list (Theorem 9), a full ranking
//! (Theorem 11), or a partial ranking of prescribed type (Corollary 30).

use crate::error::check_inputs;
use crate::AggregateError;
use bucketrank_core::consistent::project_to_type;
use bucketrank_core::{BucketOrder, ElementId, Pos, TypeSeq};

/// Which representative of the median set to take when the number of
/// inputs is even (for odd `m` the median is unique).
///
/// The paper's `median(a_1, …, a_m)` is a *set* — for even `m` it contains
/// the two middle values and their average. We default to [`MedianPolicy::Lower`], which
/// keeps positions in exact half-units (the averaged variant can leave the
/// half-unit grid, violating the integrality assumption of the paper's
/// linear-space dynamic program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MedianPolicy {
    /// The lower middle value `a_{m/2}` (paper: `a_{⌊(m+1)/2⌋}`).
    #[default]
    Lower,
    /// The upper middle value `a_{m/2+1}`.
    Upper,
}

/// The median of a nonempty list of positions under the given policy.
///
/// # Panics
/// Panics if `values` is empty.
pub fn median_of(values: &mut [Pos], policy: MedianPolicy) -> Pos {
    assert!(!values.is_empty(), "median of empty list");
    values.sort_unstable();
    let m = values.len();
    match policy {
        MedianPolicy::Lower => values[(m - 1) / 2],
        MedianPolicy::Upper => values[m / 2],
    }
}

/// The median *set* `{lower, upper}` of a nonempty list of positions
/// (equal for odd length). Any value between them, inclusive, is a valid
/// median in the sense of Lemma 8.
///
/// # Panics
/// Panics if `values` is empty.
pub fn median_bounds(values: &mut [Pos]) -> (Pos, Pos) {
    assert!(!values.is_empty(), "median of empty list");
    values.sort_unstable();
    let m = values.len();
    (values[(m - 1) / 2], values[m / 2])
}

/// The per-element median score vector `f` of the input rankings'
/// positions: `f(d) ∈ median(σ_1(d), …, σ_m(d))`.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn median_positions(
    inputs: &[BucketOrder],
    policy: MedianPolicy,
) -> Result<Vec<Pos>, AggregateError> {
    let n = check_inputs(inputs)?;
    let mut f = Vec::with_capacity(n);
    let mut scratch = vec![Pos::ZERO; inputs.len()];
    for e in 0..n as ElementId {
        for (slot, s) in scratch.iter_mut().zip(inputs) {
            *slot = s.position(e);
        }
        f.push(median_of(&mut scratch, policy));
    }
    Ok(f)
}

/// The per-element **weighted** median of the inputs' positions: voter
/// `i` counts with weight `weights[i]`. The (lower) weighted median of a
/// value multiset is the smallest value whose cumulative weight reaches
/// half the total; it minimizes the weighted `L1` objective
/// `Σ_i w_i·L1(g, σ_i)` exactly as Lemma 8 does in the unweighted case.
///
/// With all weights equal this coincides with
/// [`median_positions`]`(…, MedianPolicy::Lower)`.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`];
/// weights must match the inputs in number and have a positive sum
/// (violations are reported as [`AggregateError::DomainMismatch`] with
/// the weight count).
pub fn weighted_median_positions(
    inputs: &[BucketOrder],
    weights: &[f64],
) -> Result<Vec<Pos>, AggregateError> {
    let n = check_inputs(inputs)?;
    if weights.len() != inputs.len()
        || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
        || weights.iter().sum::<f64>() <= 0.0
    {
        return Err(AggregateError::DomainMismatch {
            expected: inputs.len(),
            found: weights.len(),
        });
    }
    let half = weights.iter().sum::<f64>() / 2.0;
    let mut f = Vec::with_capacity(n);
    let mut scratch: Vec<(Pos, f64)> = Vec::with_capacity(inputs.len());
    for e in 0..n as ElementId {
        scratch.clear();
        scratch.extend(inputs.iter().zip(weights).map(|(s, &w)| (s.position(e), w)));
        scratch.sort_by_key(|a| a.0);
        let mut acc = 0.0;
        let mut med = scratch.last().expect("inputs nonempty").0;
        for &(p, w) in &scratch {
            acc += w;
            if acc >= half {
                med = p;
                break;
            }
        }
        f.push(med);
    }
    Ok(f)
}

/// Weighted median aggregation into a partial ranking of the prescribed
/// type (weighted analogue of [`aggregate_to_type`]).
///
/// # Errors
/// As [`weighted_median_positions`] plus
/// [`AggregateError::TypeSizeMismatch`].
pub fn weighted_aggregate_to_type(
    inputs: &[BucketOrder],
    weights: &[f64],
    alpha: &TypeSeq,
) -> Result<BucketOrder, AggregateError> {
    let f = weighted_median_positions(inputs, weights)?;
    Ok(project_to_type(&f, alpha)?)
}

/// Median aggregation into a top-k list (Theorem 9): the `k` elements with
/// the smallest median positions, ordered by median (ties broken by
/// element id), with everything else in the bottom bucket.
///
/// Guarantee: `Σ_i L1(output, σ_i) ≤ 3 · Σ_i L1(τ, σ_i)` for **every**
/// top-k list `τ`, under the `Fprof` (`L1`) objective. The output is also
/// nearly optimal in the *strong* sense of Theorem 35.
///
/// # Errors
/// [`AggregateError::NoInputs`], [`AggregateError::DomainMismatch`], or
/// [`AggregateError::InvalidK`] if `k` exceeds the domain.
pub fn aggregate_top_k(
    inputs: &[BucketOrder],
    k: usize,
    policy: MedianPolicy,
) -> Result<BucketOrder, AggregateError> {
    let n = check_inputs(inputs)?;
    let alpha = TypeSeq::top_k(n, k)?;
    aggregate_to_type(inputs, &alpha, policy)
}

/// Median aggregation into a full ranking: order by median position, ties
/// broken by element id (any refinement of the induced median order —
/// Theorem 11).
///
/// When the inputs are themselves full rankings, the result satisfies
/// `Σ_i L1(output, σ_i) ≤ 2 · Σ_i L1(τ, σ_i)` for every partial ranking
/// `τ` — the paper's factor-2 footrule aggregation, answering the open
/// question of Dwork et al. / Fagin et al.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn aggregate_full(
    inputs: &[BucketOrder],
    policy: MedianPolicy,
) -> Result<BucketOrder, AggregateError> {
    let n = check_inputs(inputs)?;
    let alpha = TypeSeq::full(n);
    aggregate_to_type(inputs, &alpha, policy)
}

/// Median aggregation into a partial ranking of the prescribed type
/// (Corollary 30): the canonical member of `⟨f⟩_α` for the median vector
/// `f`.
///
/// Guarantee: within factor 3 of every partial ranking of type `alpha`
/// under the `Fprof` objective — and factor 2 when every input has type
/// `alpha` too.
///
/// # Errors
/// [`AggregateError::NoInputs`], [`AggregateError::DomainMismatch`], or
/// [`AggregateError::TypeSizeMismatch`].
pub fn aggregate_to_type(
    inputs: &[BucketOrder],
    alpha: &TypeSeq,
    policy: MedianPolicy,
) -> Result<BucketOrder, AggregateError> {
    let f = median_positions(inputs, policy)?;
    Ok(project_to_type(&f, alpha)?)
}

/// The partial ranking induced by the median vector itself (`f̄` —
/// elements with equal medians tied). This is the "natural" median
/// aggregate before any type shaping; pair it with
/// [`crate::dp::optimal_bucketing`] for the Theorem 10 guarantee.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn median_order(
    inputs: &[BucketOrder],
    policy: MedianPolicy,
) -> Result<BucketOrder, AggregateError> {
    let f = median_positions(inputs, policy)?;
    Ok(bucketrank_core::consistent::induced_ranking(&f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::total_l1_x2;

    fn keys(keys: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(keys)
    }

    #[test]
    fn median_of_policies() {
        let mut v = [3, 1, 7]
            .map(Pos::from_rank)
            .to_vec();
        assert_eq!(median_of(&mut v, MedianPolicy::Lower), Pos::from_rank(3));
        assert_eq!(median_of(&mut v, MedianPolicy::Upper), Pos::from_rank(3));
        let mut v = [4, 1, 7, 2].map(Pos::from_rank).to_vec();
        assert_eq!(median_of(&mut v, MedianPolicy::Lower), Pos::from_rank(2));
        assert_eq!(median_of(&mut v, MedianPolicy::Upper), Pos::from_rank(4));
        let (lo, hi) = median_bounds(&mut v);
        assert_eq!((lo, hi), (Pos::from_rank(2), Pos::from_rank(4)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_of_empty_panics() {
        median_of(&mut [], MedianPolicy::Lower);
    }

    #[test]
    fn median_positions_simple() {
        // Element 0 is ranked 1st, 1st, 3rd -> median rank 1.
        let s1 = BucketOrder::from_permutation(&[0, 1, 2]).unwrap();
        let s2 = BucketOrder::from_permutation(&[0, 2, 1]).unwrap();
        let s3 = BucketOrder::from_permutation(&[1, 2, 0]).unwrap();
        let f = median_positions(&[s1, s2, s3], MedianPolicy::Lower).unwrap();
        assert_eq!(f[0], Pos::from_rank(1));
        assert_eq!(f[1], Pos::from_rank(2));
        assert_eq!(f[2], Pos::from_rank(2));
    }

    #[test]
    fn lemma8_median_minimizes_l1() {
        // Σ L1(f, f_i) ≤ Σ L1(g, f_i) for any g — verify against a grid of
        // alternative g vectors.
        let inputs = [
            keys(&[1, 3, 2, 4]),
            keys(&[2, 1, 1, 3]),
            keys(&[1, 2, 3, 3]),
            keys(&[4, 3, 2, 1]),
            keys(&[1, 1, 2, 2]),
        ];
        let profiles: Vec<Vec<Pos>> = inputs.iter().map(|s| s.positions()).collect();
        for policy in [MedianPolicy::Lower, MedianPolicy::Upper] {
            let f = median_positions(&inputs, policy).unwrap();
            let med_cost = total_l1_x2(&f, &inputs).unwrap();
            // Alternatives: every input's own profile, and perturbations.
            for p in &profiles {
                assert!(med_cost <= total_l1_x2(p, &inputs).unwrap());
            }
            for delta in -3i64..=3 {
                let g: Vec<Pos> = f
                    .iter()
                    .map(|&x| x + Pos::from_half_units(delta))
                    .collect();
                assert!(med_cost <= total_l1_x2(&g, &inputs).unwrap());
            }
        }
    }

    #[test]
    fn aggregate_top_k_shape_and_content() {
        // Element 2 is everyone's favorite.
        let inputs = [
            keys(&[3, 2, 1, 4]),
            keys(&[2, 3, 1, 4]),
            keys(&[3, 4, 1, 2]),
        ];
        let top1 = aggregate_top_k(&inputs, 1, MedianPolicy::Lower).unwrap();
        assert_eq!(top1.buckets()[0], vec![2]);
        assert_eq!(top1.top_k_len(), Some(1));
        let top2 = aggregate_top_k(&inputs, 2, MedianPolicy::Lower).unwrap();
        assert_eq!(top2.buckets()[0], vec![2]);
        assert_eq!(top2.num_buckets(), 3);
        assert!(aggregate_top_k(&inputs, 9, MedianPolicy::Lower).is_err());
    }

    #[test]
    fn aggregate_full_is_full_and_consistent_with_median() {
        let inputs = [
            keys(&[1, 1, 2, 2]),
            keys(&[2, 1, 2, 1]),
            keys(&[1, 2, 1, 2]),
        ];
        let out = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
        assert!(out.is_full());
        let f = median_positions(&inputs, MedianPolicy::Lower).unwrap();
        assert!(bucketrank_core::consistent::consistent_with(&f, &out).unwrap());
    }

    #[test]
    fn median_order_groups_equal_medians() {
        let inputs = [keys(&[1, 1, 2]), keys(&[1, 1, 2]), keys(&[2, 1, 1])];
        let order = median_order(&inputs, MedianPolicy::Lower).unwrap();
        // Elements 0 and 1 share the median position 1.5.
        assert!(order.is_tied(0, 1));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            aggregate_full(&[], MedianPolicy::Lower),
            Err(AggregateError::NoInputs)
        ));
        let bad = [BucketOrder::trivial(2), BucketOrder::trivial(3)];
        assert!(matches!(
            aggregate_full(&bad, MedianPolicy::Lower),
            Err(AggregateError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn weighted_median_reduces_to_unweighted() {
        let inputs = [
            keys(&[1, 3, 2, 4]),
            keys(&[2, 1, 1, 3]),
            keys(&[1, 2, 3, 3]),
        ];
        let unweighted = median_positions(&inputs, MedianPolicy::Lower).unwrap();
        let weighted = weighted_median_positions(&inputs, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(unweighted, weighted);
        // Scaling all weights changes nothing.
        let scaled = weighted_median_positions(&inputs, &[7.0, 7.0, 7.0]).unwrap();
        assert_eq!(unweighted, scaled);
    }

    #[test]
    fn weighted_median_minimizes_weighted_l1() {
        let inputs = [keys(&[1, 2, 3]), keys(&[3, 2, 1]), keys(&[2, 1, 3])];
        let weights = [5.0, 1.0, 2.0];
        let f = weighted_median_positions(&inputs, &weights).unwrap();
        let cost = |g: &[Pos]| -> f64 {
            inputs
                .iter()
                .zip(&weights)
                .map(|(s, &w)| {
                    w * g
                        .iter()
                        .enumerate()
                        .map(|(e, &p)| p.abs_diff(s.position(e as ElementId)) as f64)
                        .sum::<f64>()
                })
                .sum()
        };
        let base = cost(&f);
        for delta in -4i64..=4 {
            for e in 0..3usize {
                let mut g = f.clone();
                g[e] += Pos::from_half_units(delta);
                assert!(base <= cost(&g) + 1e-9, "beaten by perturbation");
            }
        }
        // A dominant voter pulls the median to itself.
        let heavy = weighted_median_positions(&inputs, &[100.0, 1.0, 1.0]).unwrap();
        assert_eq!(heavy, inputs[0].positions());
    }

    #[test]
    fn weighted_aggregate_shapes_output() {
        let inputs = [keys(&[1, 2, 3]), keys(&[3, 2, 1])];
        let alpha = TypeSeq::top_k(3, 1).unwrap();
        let out = weighted_aggregate_to_type(&inputs, &[3.0, 1.0], &alpha).unwrap();
        // The heavier first voter's favorite (element 0) wins.
        assert_eq!(out.buckets()[0], vec![0]);
    }

    #[test]
    fn weighted_median_rejects_bad_weights() {
        let inputs = [keys(&[1, 2]), keys(&[2, 1])];
        assert!(weighted_median_positions(&inputs, &[1.0]).is_err());
        assert!(weighted_median_positions(&inputs, &[1.0, -1.0]).is_err());
        assert!(weighted_median_positions(&inputs, &[0.0, 0.0]).is_err());
        assert!(weighted_median_positions(&inputs, &[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn single_input_top_k_matches_input_prefix() {
        // With one input, the median is the input itself.
        let s = keys(&[2, 1, 3, 4, 5]);
        let out = aggregate_top_k(std::slice::from_ref(&s), 3, MedianPolicy::Lower).unwrap();
        assert_eq!(out.buckets()[0], vec![1]);
        assert_eq!(out.buckets()[1], vec![0]);
        assert_eq!(out.buckets()[2], vec![2]);
    }
}
