//! Aggregation objectives: total distance from a candidate to the inputs.

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId, Pos};
use bucketrank_metrics::batch::{BatchMetric, WeightedMetric};
use bucketrank_metrics::{
    footrule, hausdorff, kendall, prepared, MetricsError, PairArena, PreparedRanking, Weights,
};

/// Which of the paper's four partial-ranking metrics to aggregate under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggMetric {
    /// Profile Kendall `Kprof` (Section 3.1).
    KProf,
    /// Profile footrule `Fprof` — the metric the median algorithm directly
    /// approximates (Section 6).
    FProf,
    /// Hausdorff Kendall `KHaus` (Section 3.2).
    KHaus,
    /// Hausdorff footrule `FHaus` (Section 3.2).
    FHaus,
}

impl AggMetric {
    /// All four metrics, for sweeps.
    pub const ALL: [AggMetric; 4] = [
        AggMetric::KProf,
        AggMetric::FProf,
        AggMetric::KHaus,
        AggMetric::FHaus,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AggMetric::KProf => "Kprof",
            AggMetric::FProf => "Fprof",
            AggMetric::KHaus => "KHaus",
            AggMetric::FHaus => "FHaus",
        }
    }

    /// The batch-engine metric computing this objective, with the factor
    /// turning the engine's canonical scale into the shared `_x2` scale
    /// (the Hausdorff metrics come back unscaled and need doubling).
    pub fn batch_metric(self) -> (BatchMetric, u64) {
        match self {
            AggMetric::KProf => (BatchMetric::KProfX2, 1),
            AggMetric::FProf => (BatchMetric::FProfX2, 1),
            AggMetric::KHaus => (BatchMetric::KHaus, 2),
            AggMetric::FHaus => (BatchMetric::FHaus, 2),
        }
    }

    /// Whether this objective is a pure function of the profile's
    /// pairwise tally (the Kendall profile family): if so,
    /// [`total_cost_x2_tally`] evaluates it in `O(n²)` independent of
    /// the number of voters. `Fprof` is position-based and the
    /// Hausdorff metrics need per-voter pair statistics, so they are
    /// not tally-expressible.
    pub fn tally_expressible(self) -> bool {
        matches!(self, AggMetric::KProf)
    }
}

/// Tally-backed fast path for [`total_cost_x2`]: evaluates the
/// objective from a prebuilt [`ProfileTally`] in `O(n²)`, independent
/// of the number of voters. Returns `None` for metrics that are not
/// [tally-expressible](AggMetric::tally_expressible) — callers fall
/// back to the prepared per-voter path.
///
/// # Errors
/// [`AggregateError::DomainMismatch`] if the candidate's domain differs
/// from the tally's.
pub fn total_cost_x2_tally(
    metric: AggMetric,
    candidate: &BucketOrder,
    tally: &ProfileTally,
) -> Option<Result<u64, AggregateError>> {
    match metric {
        AggMetric::KProf => Some(tally.kemeny_cost_x2(candidate)),
        _ => None,
    }
}

/// Distance between two partial rankings under `metric`, **doubled** so
/// all four metrics share one exact integer scale.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn distance_x2(
    metric: AggMetric,
    a: &BucketOrder,
    b: &BucketOrder,
) -> Result<u64, MetricsError> {
    Ok(match metric {
        AggMetric::KProf => kendall::kprof_x2(a, b)?,
        AggMetric::FProf => footrule::fprof_x2(a, b)?,
        AggMetric::KHaus => 2 * hausdorff::khaus(a, b)?,
        AggMetric::FHaus => 2 * hausdorff::fhaus(a, b)?,
    })
}

/// [`distance_x2`] over prepared views — for callers evaluating one
/// candidate against many rankings (or many candidates against a fixed
/// profile), preparing once and paying only the kernel per pair.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn distance_x2_prepared(
    metric: AggMetric,
    a: &PreparedRanking<'_>,
    b: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    let (bm, scale) = metric.batch_metric();
    Ok(scale * bm.prepared(a, b)?)
}

/// [`distance_x2_prepared`] against a caller-held [`PairArena`]: the
/// arena-pooled entry the scoring loops use — one arena serves every
/// pair of a sweep instead of bouncing through thread-local scratch.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn distance_x2_prepared_in(
    metric: AggMetric,
    arena: &mut PairArena,
    a: &PreparedRanking<'_>,
    b: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    let (bm, scale) = metric.batch_metric();
    Ok(scale * bm.prepared_in(arena, a, b)?)
}

/// The aggregation objective `2·Σ_i d(candidate, σ_i)` under `metric`.
///
/// The candidate is prepared once and scored against prepared input
/// views, so the per-input cost is the bare metric kernel.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn total_cost_x2(
    metric: AggMetric,
    candidate: &BucketOrder,
    inputs: &[BucketOrder],
) -> Result<u64, AggregateError> {
    check_inputs(inputs)?;
    let cand = prepared::PreparedRanking::new(candidate);
    let prepared_inputs: Vec<PreparedRanking<'_>> =
        inputs.iter().map(PreparedRanking::new).collect();
    total_cost_x2_prepared(metric, &cand, &prepared_inputs)
}

/// [`total_cost_x2`] over already-prepared views: the candidate and the
/// inputs are prepared by the caller (typically once, then reused across
/// many candidate evaluations — the local-search and medoid loops).
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn total_cost_x2_prepared(
    metric: AggMetric,
    candidate: &PreparedRanking<'_>,
    inputs: &[PreparedRanking<'_>],
) -> Result<u64, AggregateError> {
    if inputs.is_empty() {
        return Err(AggregateError::NoInputs);
    }
    // One arena for the whole candidate-vs-profile sweep.
    let mut arena = PairArena::new();
    let mut total = 0u64;
    for s in inputs {
        total += distance_x2_prepared_in(metric, &mut arena, candidate, s)?;
    }
    Ok(total)
}

/// The weighted aggregation objective `Σ_i d_w(candidate, σ_i)` under
/// `metric`'s canonical scale (`weighted_footrule_x2` is doubled,
/// `top_diff` unscaled; see [`bucketrank_metrics::weighted`]).
///
/// Weight structure decides the evaluation path — the weighted
/// analogue of the tally-expressibility rule:
///
/// * **Uniform weights `w ≡ c`** make the weighted footrule exactly
///   `c ×` the unweighted `Fprof` (cumulative masses are `W(p) = c·p`),
///   so the objective collapses onto the existing prepared `Fprof`
///   sweep scaled once at the end.
/// * Anything else (and `top_diff`, which has no unweighted
///   counterpart in the paper's family) takes the direct path: the
///   candidate's score vector is computed **once**, then each voter
///   costs one score-vector build plus an `O(n)` zip.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`]
/// (also raised when `w` does not cover the shared domain).
pub fn weighted_total_cost(
    metric: WeightedMetric,
    candidate: &BucketOrder,
    inputs: &[BucketOrder],
    w: &Weights,
) -> Result<u64, AggregateError> {
    let n = check_inputs(inputs)?;
    if candidate.len() != n {
        return Err(AggregateError::DomainMismatch {
            expected: n,
            found: candidate.len(),
        });
    }
    if metric == WeightedMetric::WeightedFootruleX2 {
        if let Some(c) = w.is_uniform() {
            if w.len() == n {
                return Ok(c * total_cost_x2(AggMetric::FProf, candidate, inputs)?);
            }
        }
    }
    let cand_scores = metric.element_scores(candidate, w)?;
    let mut total = 0u64;
    for s in inputs {
        let scores = metric.element_scores(s, w)?;
        total += cand_scores
            .iter()
            .zip(&scores)
            .map(|(&x, &y)| x.abs_diff(y))
            .sum::<u64>();
    }
    Ok(total)
}

/// The `L1` objective `2·Σ_i L1(f, σ_i)` for a raw score vector `f`
/// against the inputs' position vectors (half-units). This is the
/// quantity Lemma 8 says the median minimizes.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`] if
/// `f` and the inputs do not share one domain.
pub fn total_l1_x2(f: &[Pos], inputs: &[BucketOrder]) -> Result<u64, AggregateError> {
    let n = check_inputs(inputs)?;
    if f.len() != n {
        return Err(AggregateError::DomainMismatch {
            expected: n,
            found: f.len(),
        });
    }
    let mut total = 0u64;
    for s in inputs {
        for e in 0..n as ElementId {
            total += f[e as usize].abs_diff(s.position(e));
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_and_all() {
        assert_eq!(AggMetric::ALL.len(), 4);
        assert_eq!(AggMetric::FProf.name(), "Fprof");
    }

    #[test]
    fn distances_share_scale() {
        // On full rankings: Kprof = K, Fprof = F, KHaus = K, FHaus = F,
        // so in _x2 scale the profile and Hausdorff variants coincide.
        let a = BucketOrder::from_permutation(&[0, 2, 1, 3]).unwrap();
        let b = BucketOrder::from_permutation(&[3, 2, 0, 1]).unwrap();
        assert_eq!(
            distance_x2(AggMetric::KProf, &a, &b).unwrap(),
            distance_x2(AggMetric::KHaus, &a, &b).unwrap()
        );
        assert_eq!(
            distance_x2(AggMetric::FProf, &a, &b).unwrap(),
            distance_x2(AggMetric::FHaus, &a, &b).unwrap()
        );
    }

    #[test]
    fn total_cost_sums() {
        let a = BucketOrder::identity(3);
        let r = a.reverse();
        let inputs = vec![a.clone(), r.clone()];
        let c = total_cost_x2(AggMetric::FProf, &a, &inputs).unwrap();
        // d(a, a) = 0; 2·Fprof(a, r) = 2·4 = 8.
        assert_eq!(c, 8);
    }

    #[test]
    fn total_l1_matches_fprof_for_profile_candidates() {
        let s1 = BucketOrder::from_keys(&[1, 2, 2]);
        let s2 = BucketOrder::from_keys(&[2, 1, 1]);
        let inputs = vec![s1.clone(), s2];
        let c1 = total_cost_x2(AggMetric::FProf, &s1, &inputs).unwrap();
        let c2 = total_l1_x2(&s1.positions(), &inputs).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn prepared_cost_matches_direct() {
        let inputs: Vec<BucketOrder> = vec![
            BucketOrder::from_keys(&[1, 2, 3, 4, 1]),
            BucketOrder::from_keys(&[4, 3, 2, 1, 1]),
            BucketOrder::from_keys(&[2, 2, 2, 1, 3]),
        ];
        let cand = BucketOrder::from_keys(&[1, 1, 2, 3, 2]);
        let pc = PreparedRanking::new(&cand);
        let pin: Vec<PreparedRanking<'_>> = inputs.iter().map(PreparedRanking::new).collect();
        for metric in AggMetric::ALL {
            let direct: u64 = inputs
                .iter()
                .map(|s| {
                    match metric {
                        AggMetric::KProf => kendall::kprof_x2(&cand, s),
                        AggMetric::FProf => footrule::fprof_x2(&cand, s),
                        AggMetric::KHaus => hausdorff::khaus(&cand, s).map(|v| 2 * v),
                        AggMetric::FHaus => hausdorff::fhaus(&cand, s).map(|v| 2 * v),
                    }
                    .unwrap()
                })
                .sum();
            assert_eq!(
                total_cost_x2(metric, &cand, &inputs).unwrap(),
                direct,
                "{}",
                metric.name()
            );
            assert_eq!(
                total_cost_x2_prepared(metric, &pc, &pin).unwrap(),
                direct,
                "{} prepared",
                metric.name()
            );
            assert_eq!(
                distance_x2_prepared(metric, &pc, &pin[0]).unwrap(),
                distance_x2(metric, &cand, &inputs[0]).unwrap(),
                "{} pair",
                metric.name()
            );
            let mut arena = PairArena::new();
            assert_eq!(
                distance_x2_prepared_in(metric, &mut arena, &pc, &pin[0]).unwrap(),
                distance_x2(metric, &cand, &inputs[0]).unwrap(),
                "{} pair (arena)",
                metric.name()
            );
        }
    }

    #[test]
    fn weighted_total_cost_matches_per_voter_kernels() {
        use bucketrank_metrics::weighted;
        let inputs: Vec<BucketOrder> = vec![
            BucketOrder::from_keys(&[1, 2, 3, 4, 1]),
            BucketOrder::from_keys(&[4, 3, 2, 1, 1]),
            BucketOrder::from_keys(&[2, 2, 2, 1, 3]),
        ];
        let cand = BucketOrder::from_keys(&[1, 1, 2, 3, 2]);
        for w in [
            Weights::uniform(5),
            Weights::from_units(vec![3; 5]).unwrap(),
            Weights::from_units(vec![16, 8, 4, 2, 1]).unwrap(),
            Weights::from_units(vec![1, 1, 0, 0, 0]).unwrap(),
        ] {
            for metric in WeightedMetric::ALL {
                let direct: u64 = inputs
                    .iter()
                    .map(|s| metric.naive(&cand, s, &w).unwrap())
                    .sum();
                assert_eq!(
                    weighted_total_cost(metric, &cand, &inputs, &w).unwrap(),
                    direct,
                    "{} under {:?}",
                    metric.name(),
                    w.units()
                );
            }
            // The uniform fast path is the identity c·Fprof.
            if let Some(c) = w.is_uniform() {
                assert_eq!(
                    weighted_total_cost(
                        WeightedMetric::WeightedFootruleX2,
                        &cand,
                        &inputs,
                        &w
                    )
                    .unwrap(),
                    c * total_cost_x2(AggMetric::FProf, &cand, &inputs).unwrap()
                );
            }
            let _ = weighted::top_diff(&cand, &inputs[0], &w).unwrap();
        }
    }

    #[test]
    fn weighted_total_cost_rejects_bad_shapes() {
        let inputs = vec![BucketOrder::trivial(3)];
        let cand = BucketOrder::trivial(3);
        for metric in WeightedMetric::ALL {
            assert_eq!(
                weighted_total_cost(metric, &cand, &[], &Weights::uniform(3)),
                Err(AggregateError::NoInputs)
            );
            assert_eq!(
                weighted_total_cost(metric, &BucketOrder::trivial(4), &inputs, &Weights::uniform(3)),
                Err(AggregateError::DomainMismatch { expected: 3, found: 4 })
            );
            // A weights/domain length gap maps onto DomainMismatch —
            // including under the uniform fast path.
            assert_eq!(
                weighted_total_cost(metric, &cand, &inputs, &Weights::uniform(5)),
                Err(AggregateError::DomainMismatch { expected: 3, found: 5 })
            );
        }
    }

    #[test]
    fn errors() {
        let a = BucketOrder::trivial(3);
        assert!(total_cost_x2(AggMetric::KProf, &a, &[]).is_err());
        assert_eq!(
            total_cost_x2_prepared(AggMetric::KProf, &PreparedRanking::new(&a), &[]),
            Err(AggregateError::NoInputs)
        );
        let b = BucketOrder::trivial(4);
        assert!(distance_x2_prepared(
            AggMetric::FHaus,
            &PreparedRanking::new(&a),
            &PreparedRanking::new(&b)
        )
        .is_err());
        let f = vec![Pos::ZERO; 2];
        assert!(total_l1_x2(&f, std::slice::from_ref(&a)).is_err());
    }
}
