//! Optimal bucketing of a score vector: the `O(n²)` dynamic program of
//! Appendix A.6.4 (the paper's Figure 1).
//!
//! Given a score vector `f`, the algorithms compute a partial ranking
//! `f†` minimizing `L1(f†, f)` over **all** partial rankings. Applied to a
//! median vector (Lemma 8), this yields the Theorem 10 guarantees: the
//! result is within factor 2 of any partial-ranking aggregation when the
//! inputs are partial rankings, and factor 3 in general.
//!
//! Three implementations are provided and cross-checked:
//!
//! * [`optimal_bucketing`] — the paper's Figure 1: `O(n²)` time, linear
//!   space, exploiting that `2·f(i)` is integral (always true for our
//!   [`Pos`] half-units). **Implementation note:** the paper's Lemma 37
//!   update assumes the crossing index `k` satisfies `k ≥ i + 1`; for
//!   score vectors with many equal values the `WHILE` loop can leave
//!   `k ≤ i`, making the printed update formula overshoot. We clamp `k`
//!   to `i + 1` before applying it, which restores the intended
//!   "count below minus count above" semantics (verified exhaustively
//!   against brute force in the tests).
//! * [`optimal_bucketing_table`] — the quadratic-space variant using the
//!   anti-diagonal recurrence `c(i−1, j+1) = c(i, j) + |f(i) − m| +
//!   |f(j+1) − m|` with shared center `m = (i+j+1)/2`.
//! * [`optimal_bucketing_prefix`] — linear space, `O(n² log n)`, computing
//!   each `c(i, j)` on demand from prefix sums by binary search.
//!
//! All costs are reported in half-units (`2 × L1`), consistent with the
//! rest of the workspace.

use crate::median::{median_positions, MedianPolicy};
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId, Pos};

/// Result of an optimal-bucketing computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucketing {
    /// The optimal partial ranking `f†`.
    pub order: BucketOrder,
    /// Its cost `2·L1(f†, f)` in half-units.
    pub cost_x2: u64,
}

/// Shared preprocessing: elements sorted ascending by `(score, id)` and
/// the sorted half-unit values.
fn sort_scores(f: &[Pos]) -> (Vec<ElementId>, Vec<i64>) {
    let mut order: Vec<ElementId> = (0..f.len() as ElementId).collect();
    order.sort_by(|&a, &b| f[a as usize].cmp(&f[b as usize]).then(a.cmp(&b)));
    let v: Vec<i64> = order.iter().map(|&e| f[e as usize].half_units()).collect();
    (order, v)
}

/// Builds the bucket order from DP boundaries over the sorted elements.
fn rebuild(order: &[ElementId], parents: &[usize], n: usize) -> BucketOrder {
    if n == 0 {
        return BucketOrder::trivial(0);
    }
    let mut bounds = Vec::new();
    let mut j = n;
    while j > 0 {
        bounds.push(j);
        j = parents[j];
    }
    bounds.push(0);
    bounds.reverse();
    let buckets: Vec<Vec<ElementId>> = bounds
        .windows(2)
        .map(|w| order[w[0]..w[1]].to_vec())
        .collect();
    BucketOrder::from_buckets(n, buckets).expect("boundaries partition the domain")
}

/// The paper's Figure 1 algorithm: optimal bucketing in `O(n²)` time and
/// linear space. See the [module docs](self) for the `k`-clamping note.
pub fn optimal_bucketing(f: &[Pos]) -> Bucketing {
    let n = f.len();
    if n == 0 {
        return Bucketing {
            order: BucketOrder::trivial(0),
            cost_x2: 0,
        };
    }
    let (order, v) = sort_scores(f);
    // 1-indexed sorted values, v1[1..=n].
    let mut v1 = vec![0i64; n + 1];
    v1[1..].copy_from_slice(&v);

    let mut best = vec![i64::MAX; n + 1];
    let mut parents = vec![0usize; n + 1];
    best[0] = 0;
    for j in 1..=n {
        // c = C2(i, j) for the current i, starting at i = 0:
        // C2(0, j) = Σ_{ℓ=1..j} |v(ℓ) − (j+1)| (center in half-units).
        let mut c: i64 = (1..=j).map(|l| (v1[l] - (j as i64 + 1)).abs()).sum();
        let mut best_j = best[0] + c;
        let mut arg = 0usize;
        let mut k = 1usize;
        for i in 1..j {
            // Advance k to the first index with v(k) ≥ i + j + 1.
            while k <= j && v1[k] < (i + j + 1) as i64 {
                k += 1;
            }
            // Lemma 37 update, with k clamped to i+1 (see module docs):
            // C2(i, j) = C2(i−1, j) − |v(i) − (i+j)| + below − above.
            let ek = k.max(i + 1);
            let below = (ek - 1 - i) as i64;
            let above = (j + 1 - ek) as i64;
            c = c - (v1[i] - (i + j) as i64).abs() + below - above;
            debug_assert!(c >= 0, "bucket cost must be nonnegative");
            if best[i] != i64::MAX && best[i] + c < best_j {
                best_j = best[i] + c;
                arg = i;
            }
        }
        best[j] = best_j;
        parents[j] = arg;
    }
    Bucketing {
        order: rebuild(&order, &parents, n),
        cost_x2: best[n] as u64,
    }
}

/// Quadratic-space variant: precomputes the full `c(i, j)` table along
/// anti-diagonals (centers are shared along `i + j = const`), then runs
/// the boundary DP. `O(n²)` time and space.
pub fn optimal_bucketing_table(f: &[Pos]) -> Bucketing {
    let n = f.len();
    if n == 0 {
        return Bucketing {
            order: BucketOrder::trivial(0),
            cost_x2: 0,
        };
    }
    let (order, v) = sort_scores(f);
    let mut v1 = vec![0i64; n + 1];
    v1[1..].copy_from_slice(&v);
    // c[i][j] for 0 ≤ i < j ≤ n; store in a flat (n+1)×(n+1) table.
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut c = vec![0i64; (n + 1) * (n + 1)];
    // Width-1 base: c(i, i+1) = |v(i+1) − (2i+2)|.
    for i in 0..n {
        c[idx(i, i + 1)] = (v1[i + 1] - (2 * i as i64 + 2)).abs();
    }
    // Grow outward: c(i−1, j+1) = c(i, j) + |v(i) − m| + |v(j+1) − m|,
    // m = i + j + 1 in half-units.
    for w in 2..=n {
        for i in 0..=(n - w) {
            let j = i + w;
            let m = (i + j + 1) as i64;
            let inner = if w == 2 {
                0 // c(i+1, j−1) with j−1 = i+1 is an empty bucket
            } else {
                c[idx(i + 1, j - 1)]
            };
            c[idx(i, j)] = inner + (v1[i + 1] - m).abs() + (v1[j] - m).abs();
        }
    }
    let mut best = vec![i64::MAX; n + 1];
    let mut parents = vec![0usize; n + 1];
    best[0] = 0;
    for j in 1..=n {
        for i in 0..j {
            if best[i] == i64::MAX {
                continue;
            }
            let cand = best[i] + c[idx(i, j)];
            if cand < best[j] {
                best[j] = cand;
                parents[j] = i;
            }
        }
    }
    Bucketing {
        order: rebuild(&order, &parents, n),
        cost_x2: best[n] as u64,
    }
}

/// Linear-space variant computing each `c(i, j)` on demand from prefix
/// sums with a binary search: `O(n² log n)` time, `O(n)` space, no
/// integrality assumption on the scores.
pub fn optimal_bucketing_prefix(f: &[Pos]) -> Bucketing {
    let n = f.len();
    if n == 0 {
        return Bucketing {
            order: BucketOrder::trivial(0),
            cost_x2: 0,
        };
    }
    let (order, v) = sort_scores(f);
    // prefix[r] = Σ_{ℓ<r} v[ℓ] (0-indexed v).
    let mut prefix = vec![0i64; n + 1];
    for (r, &x) in v.iter().enumerate() {
        prefix[r + 1] = prefix[r] + x;
    }
    // c(i, j) over sorted 0-indexed range [i, j): center m = i + j + 1.
    let cost = |i: usize, j: usize| -> i64 {
        let m = (i + j + 1) as i64;
        // First index t in [i, j) with v[t] ≥ m.
        let t = i + v[i..j].partition_point(|&x| x < m);
        let below_cnt = (t - i) as i64;
        let below_sum = prefix[t] - prefix[i];
        let above_cnt = (j - t) as i64;
        let above_sum = prefix[j] - prefix[t];
        (below_cnt * m - below_sum) + (above_sum - above_cnt * m)
    };
    let mut best = vec![i64::MAX; n + 1];
    let mut parents = vec![0usize; n + 1];
    best[0] = 0;
    for j in 1..=n {
        for i in 0..j {
            if best[i] == i64::MAX {
                continue;
            }
            let cand = best[i] + cost(i, j);
            if cand < best[j] {
                best[j] = cand;
                parents[j] = i;
            }
        }
    }
    Bucketing {
        order: rebuild(&order, &parents, n),
        cost_x2: best[n] as u64,
    }
}

/// Optimal bucketing with **at most** `max_buckets` buckets: the best
/// `L1(f†, f)` over partial rankings whose type has `≤ max_buckets`
/// parts. `O(n²·max_buckets)` time via the layered boundary DP (no
/// integrality assumption; `c(i, j)` from prefix sums).
///
/// Useful when the output must fit a UI with a bounded number of tiers
/// (medal podiums, star ratings); with `max_buckets ≥ n` it coincides
/// with [`optimal_bucketing`].
///
/// # Panics
/// Panics if `max_buckets == 0` while `f` is nonempty.
pub fn optimal_bucketing_bounded(f: &[Pos], max_buckets: usize) -> Bucketing {
    let n = f.len();
    if n == 0 {
        return Bucketing {
            order: BucketOrder::trivial(0),
            cost_x2: 0,
        };
    }
    assert!(max_buckets > 0, "need at least one bucket");
    let t_max = max_buckets.min(n);
    let (order, v) = sort_scores(f);
    let mut prefix = vec![0i64; n + 1];
    for (r, &x) in v.iter().enumerate() {
        prefix[r + 1] = prefix[r] + x;
    }
    let cost = |i: usize, j: usize| -> i64 {
        let m = (i + j + 1) as i64;
        let t = i + v[i..j].partition_point(|&x| x < m);
        let below_cnt = (t - i) as i64;
        let below_sum = prefix[t] - prefix[i];
        let above_cnt = (j - t) as i64;
        let above_sum = prefix[j] - prefix[t];
        (below_cnt * m - below_sum) + (above_sum - above_cnt * m)
    };
    // best[t][j]: min cost covering the first j sorted elements with
    // exactly t buckets.
    const INF: i64 = i64::MAX / 2;
    let mut best = vec![vec![INF; n + 1]; t_max + 1];
    let mut parent = vec![vec![0usize; n + 1]; t_max + 1];
    best[0][0] = 0;
    for t in 1..=t_max {
        for j in t..=n {
            for i in t - 1..j {
                if best[t - 1][i] >= INF {
                    continue;
                }
                let cand = best[t - 1][i] + cost(i, j);
                if cand < best[t][j] {
                    best[t][j] = cand;
                    parent[t][j] = i;
                }
            }
        }
    }
    let (best_t, &best_cost) = (1..=t_max)
        .map(|t| (t, &best[t][n]))
        .min_by_key(|&(t, &c)| (c, t))
        .expect("t_max ≥ 1");
    // Reconstruct boundaries.
    let mut bounds = vec![n];
    let mut j = n;
    let mut t = best_t;
    while t > 0 {
        j = parent[t][j];
        bounds.push(j);
        t -= 1;
    }
    bounds.reverse();
    let buckets: Vec<Vec<ElementId>> = bounds
        .windows(2)
        .map(|w| order[w[0]..w[1]].to_vec())
        .collect();
    Bucketing {
        order: BucketOrder::from_buckets(n, buckets).expect("bounds partition the domain"),
        cost_x2: best_cost as u64,
    }
}

/// Brute force: tries every composition of `n` (every type) and keeps the
/// best. `O(2^n)`; verification only.
///
/// # Panics
/// Panics if `f.len() > 20` to avoid accidental exponential blowups.
pub fn optimal_bucketing_brute(f: &[Pos]) -> Bucketing {
    let n = f.len();
    assert!(n <= 20, "brute-force bucketing limited to n ≤ 20");
    if n == 0 {
        return Bucketing {
            order: BucketOrder::trivial(0),
            cost_x2: 0,
        };
    }
    let (order, v) = sort_scores(f);
    let mut best_cost = i64::MAX;
    let mut best_bounds: Vec<usize> = vec![];
    for mask in 0u64..(1u64 << (n - 1)) {
        let mut bounds = vec![0usize];
        for gap in 0..n - 1 {
            if mask >> gap & 1 == 1 {
                bounds.push(gap + 1);
            }
        }
        bounds.push(n);
        let mut cost = 0i64;
        for w in bounds.windows(2) {
            let m = (w[0] + w[1] + 1) as i64;
            for &x in &v[w[0]..w[1]] {
                cost += (x - m).abs();
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_bounds = bounds;
        }
    }
    let buckets: Vec<Vec<ElementId>> = best_bounds
        .windows(2)
        .map(|w| order[w[0]..w[1]].to_vec())
        .collect();
    Bucketing {
        order: BucketOrder::from_buckets(n, buckets).expect("bounds partition the domain"),
        cost_x2: best_cost as u64,
    }
}

/// Median aggregation into an optimal partial ranking (Theorem 10): the
/// `f†` bucketing of the per-element median vector. Within factor **2** of
/// every partial ranking under the `Fprof` objective when the inputs are
/// partial rankings.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn aggregate_optimal_bucketing(
    inputs: &[BucketOrder],
    policy: MedianPolicy,
) -> Result<Bucketing, AggregateError> {
    let f = median_positions(inputs, policy)?;
    Ok(optimal_bucketing(&f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_metrics::footrule::l1_x2;

    fn pos_vec(vals: &[i64]) -> Vec<Pos> {
        vals.iter().map(|&h| Pos::from_half_units(h)).collect()
    }

    fn check_cost(f: &[Pos], b: &Bucketing) {
        // Reported cost must equal the actual L1 between f† and f.
        let actual = l1_x2(&b.order.positions(), f).unwrap();
        assert_eq!(actual, b.cost_x2, "cost mismatch for f = {f:?}");
    }

    #[test]
    fn all_variants_agree_small_exhaustive() {
        // All score vectors with half-unit values in {2,...,8}, n = 4.
        let vals: Vec<i64> = (2..=8).collect();
        let mut f = [0usize; 4];
        loop {
            let scores = pos_vec(&[
                vals[f[0]],
                vals[f[1]],
                vals[f[2]],
                vals[f[3]],
            ]);
            let a = optimal_bucketing(&scores);
            let b = optimal_bucketing_table(&scores);
            let c = optimal_bucketing_prefix(&scores);
            let d = optimal_bucketing_brute(&scores);
            check_cost(&scores, &a);
            check_cost(&scores, &b);
            check_cost(&scores, &c);
            check_cost(&scores, &d);
            assert_eq!(a.cost_x2, d.cost_x2, "figure-1 vs brute: f = {scores:?}");
            assert_eq!(b.cost_x2, d.cost_x2, "table vs brute: f = {scores:?}");
            assert_eq!(c.cost_x2, d.cost_x2, "prefix vs brute: f = {scores:?}");
            // Odometer.
            let mut i = 0;
            loop {
                if i == f.len() {
                    return;
                }
                f[i] += 1;
                if f[i] < vals.len() {
                    break;
                }
                f[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn constant_scores_collapse_to_one_bucket_cost() {
        // f ≡ c: the single-bucket candidate has position (n+1)/2; the
        // optimum depends on c but must match brute force (this is the
        // case where the unclamped paper formula would misfire).
        for c in 1..=9 {
            let f = pos_vec(&[c; 5]);
            let a = optimal_bucketing(&f);
            let d = optimal_bucketing_brute(&f);
            assert_eq!(a.cost_x2, d.cost_x2, "c = {c}");
            check_cost(&f, &a);
        }
    }

    #[test]
    fn exact_scores_of_a_bucket_order_cost_zero() {
        let s = BucketOrder::from_buckets(5, vec![vec![0, 3], vec![1], vec![2, 4]]).unwrap();
        let b = optimal_bucketing(&s.positions());
        assert_eq!(b.cost_x2, 0);
        assert_eq!(b.order, s);
    }

    #[test]
    fn optimal_beats_every_type_projection() {
        use bucketrank_core::consistent::project_to_type;
        use bucketrank_core::TypeSeq;
        let f = pos_vec(&[2, 3, 3, 9, 11, 12]);
        let b = optimal_bucketing(&f);
        check_cost(&f, &b);
        for alpha in TypeSeq::all_types(6) {
            let proj = project_to_type(&f, &alpha).unwrap();
            let cost = l1_x2(&proj.positions(), &f).unwrap();
            assert!(b.cost_x2 <= cost, "beaten by type {alpha}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let b = optimal_bucketing(&[]);
        assert_eq!(b.cost_x2, 0);
        assert!(b.order.is_empty());
        let f = pos_vec(&[7]);
        let b = optimal_bucketing(&f);
        assert_eq!(b.order, BucketOrder::trivial(1));
        // Single element sits at position 1 (half-units 2); score 3.5 → cost |7−2| = 5.
        assert_eq!(b.cost_x2, 5);
    }

    #[test]
    fn far_separated_scores_all_bucketings_tie() {
        // When every score exceeds every achievable position, the cost
        // Σ(v − σ(d)) is invariant (Σ σ(d) = n(n+1)/2 for every bucket
        // order), so all bucketings are optimal; the DP must still report
        // a cost matching brute force.
        let f = pos_vec(&[2, 100, 200, 300]);
        let b = optimal_bucketing(&f);
        let d = optimal_bucketing_brute(&f);
        assert_eq!(b.cost_x2, d.cost_x2);
        check_cost(&f, &b);
    }

    #[test]
    fn tight_cluster_groups_into_one_bucket() {
        // Two elements both scored 1.5 (half-units 3): the tie bucket at
        // position 1.5 costs 0, strictly better than any full ranking.
        let f = pos_vec(&[3, 3]);
        let b = optimal_bucketing(&f);
        assert_eq!(b.cost_x2, 0);
        assert_eq!(b.order, BucketOrder::trivial(2));
    }

    #[test]
    fn separated_scores_stay_singletons() {
        // Scores exactly at ranks 1 and 2: the full ranking costs 0.
        let f = pos_vec(&[4, 2]);
        let b = optimal_bucketing(&f);
        assert_eq!(b.cost_x2, 0);
        assert!(b.order.is_full());
        assert_eq!(b.order.as_permutation(), Some(vec![1, 0]));
    }

    #[test]
    fn equal_scores_order_respects_values() {
        let f = pos_vec(&[6, 2, 6, 2, 6]);
        let b = optimal_bucketing(&f);
        let d = optimal_bucketing_brute(&f);
        assert_eq!(b.cost_x2, d.cost_x2);
        check_cost(&f, &b);
        // Low scorers (1, 3) must precede or tie high scorers (0, 2, 4).
        for &lo in &[1u32, 3] {
            for &hi in &[0u32, 2, 4] {
                assert!(!b.order.prefers(hi, lo));
            }
        }
    }

    #[test]
    fn aggregate_optimal_bucketing_runs() {
        let inputs = [
            BucketOrder::from_keys(&[1, 1, 2, 3]),
            BucketOrder::from_keys(&[1, 2, 2, 3]),
            BucketOrder::from_keys(&[2, 1, 3, 3]),
        ];
        let b = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
        let f = median_positions(&inputs, MedianPolicy::Lower).unwrap();
        assert_eq!(b.cost_x2, l1_x2(&b.order.positions(), &f).unwrap());
        assert!(aggregate_optimal_bucketing(&[], MedianPolicy::Lower).is_err());
    }

    #[test]
    fn bounded_dp_monotone_and_matches_unbounded() {
        let f = pos_vec(&[2, 3, 3, 9, 11, 12, 20]);
        let unbounded = optimal_bucketing(&f);
        let mut prev = u64::MAX;
        for t in 1..=f.len() {
            let b = optimal_bucketing_bounded(&f, t);
            check_cost(&f, &b);
            assert!(b.order.num_buckets() <= t);
            assert!(b.cost_x2 <= prev, "more buckets should never cost more");
            prev = b.cost_x2;
        }
        assert_eq!(
            optimal_bucketing_bounded(&f, f.len()).cost_x2,
            unbounded.cost_x2
        );
        // t = 1 is the single bucket.
        let one = optimal_bucketing_bounded(&f, 1);
        assert_eq!(one.order, BucketOrder::trivial(f.len()));
    }

    #[test]
    fn bounded_dp_matches_type_enumeration() {
        use bucketrank_core::consistent::project_to_type;
        use bucketrank_core::TypeSeq;
        let f = pos_vec(&[1, 4, 4, 7, 13, 2]);
        for t in 1..=4 {
            let b = optimal_bucketing_bounded(&f, t);
            // Brute force over all types with ≤ t parts.
            let best = TypeSeq::all_types(6)
                .into_iter()
                .filter(|a| a.num_buckets() <= t)
                .map(|a| {
                    let proj = project_to_type(&f, &a).unwrap();
                    l1_x2(&proj.positions(), &f).unwrap()
                })
                .min()
                .unwrap();
            assert_eq!(b.cost_x2, best, "t = {t}");
        }
    }

    #[test]
    fn bounded_dp_edges() {
        assert_eq!(optimal_bucketing_bounded(&[], 1).cost_x2, 0);
        let f = pos_vec(&[5]);
        let b = optimal_bucketing_bounded(&f, 3);
        assert_eq!(b.order.num_buckets(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn bounded_dp_zero_buckets_panics() {
        let _ = optimal_bucketing_bounded(&[Pos::from_rank(1)], 0);
    }

    #[test]
    fn random_fuzz_against_brute() {
        // Deterministic LCG fuzz over n ∈ {1..10}, values in 0..30.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for trial in 0..300 {
            let n = (next() % 10 + 1) as usize;
            let f: Vec<Pos> = (0..n)
                .map(|_| Pos::from_half_units(next() % 30))
                .collect();
            let a = optimal_bucketing(&f);
            let t = optimal_bucketing_table(&f);
            let p = optimal_bucketing_prefix(&f);
            let d = optimal_bucketing_brute(&f);
            check_cost(&f, &a);
            assert_eq!(a.cost_x2, d.cost_x2, "trial {trial}: f = {f:?}");
            assert_eq!(t.cost_x2, d.cost_x2, "trial {trial}: f = {f:?}");
            assert_eq!(p.cost_x2, d.cost_x2, "trial {trial}: f = {f:?}");
        }
    }
}
