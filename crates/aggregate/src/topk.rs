//! Aggregating top-k lists over their own domains — the metasearch API.
//!
//! Search engines return [`TopKList`]s over *their own* result sets; to
//! aggregate them we embed every list over the union domain (unranked
//! items tied in a bottom bucket, as in Appendix A.3), run the median
//! pipeline, and emit a top-k list of the union's element ids. By
//! Theorem 9 the embedded output is within factor 3 of the best top-k
//! list over the union domain.

use crate::median::{median_positions, MedianPolicy};
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_metrics::topk::TopKList;
use std::collections::HashMap;

/// The union domain of many lists, in order of first appearance, plus
/// the reverse index.
fn union_domain(lists: &[TopKList]) -> (Vec<ElementId>, HashMap<ElementId, ElementId>) {
    let mut universe: Vec<ElementId> = Vec::new();
    let mut index: HashMap<ElementId, ElementId> = HashMap::new();
    for l in lists {
        for &e in l.items() {
            index.entry(e).or_insert_with(|| {
                universe.push(e);
                (universe.len() - 1) as ElementId
            });
        }
    }
    (universe, index)
}

/// Embeds each list as a bucket order over the union domain.
fn embed(lists: &[TopKList]) -> Result<(Vec<ElementId>, Vec<BucketOrder>), AggregateError> {
    if lists.is_empty() {
        return Err(AggregateError::NoInputs);
    }
    let (universe, index) = union_domain(lists);
    let n = universe.len();
    let orders = lists
        .iter()
        .map(|l| {
            let top: Vec<ElementId> = l.items().iter().map(|e| index[e]).collect();
            BucketOrder::top_k(n, &top).map_err(Into::into)
        })
        .collect::<Result<Vec<_>, AggregateError>>()?;
    Ok((universe, orders))
}

/// Median aggregation of top-k lists with their own domains: returns the
/// `k` union-domain elements with the smallest median embedded positions,
/// best first (ties by first appearance in the inputs).
///
/// # Errors
/// [`AggregateError::NoInputs`]; [`AggregateError::InvalidK`] if `k`
/// exceeds the union domain.
pub fn aggregate_topk_lists(
    lists: &[TopKList],
    k: usize,
    policy: MedianPolicy,
) -> Result<TopKList, AggregateError> {
    let (universe, orders) = embed(lists)?;
    let n = universe.len();
    if k > n {
        return Err(AggregateError::InvalidK { k, domain_size: n });
    }
    let f = median_positions(&orders, policy)?;
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.sort_by(|&a, &b| f[a as usize].cmp(&f[b as usize]).then(a.cmp(&b)));
    let top: Vec<ElementId> = ids[..k].iter().map(|&i| universe[i as usize]).collect();
    Ok(TopKList::new(top).expect("union-domain elements are distinct"))
}

/// Embeds the lists over their union domain and exposes the bucket
/// orders plus the universe mapping — the hook for running any other
/// aggregator (exact optima, Markov chains, …) in the [10] scenario.
///
/// # Errors
/// [`AggregateError::NoInputs`].
pub fn embed_over_union(
    lists: &[TopKList],
) -> Result<(Vec<ElementId>, Vec<BucketOrder>), AggregateError> {
    embed(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{total_cost_x2, AggMetric};
    use crate::exact::footrule_optimal_of_type;
    use bucketrank_core::TypeSeq;

    fn tk(items: &[ElementId]) -> TopKList {
        TopKList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn unanimous_lists_win() {
        let lists = vec![tk(&[7, 3, 9]), tk(&[7, 3, 9]), tk(&[7, 3, 9])];
        let out = aggregate_topk_lists(&lists, 2, MedianPolicy::Lower).unwrap();
        assert_eq!(out.items(), &[7, 3]);
    }

    #[test]
    fn majority_overrules_minority() {
        let lists = vec![tk(&[1, 2]), tk(&[1, 2]), tk(&[9, 8])];
        let out = aggregate_topk_lists(&lists, 2, MedianPolicy::Lower).unwrap();
        assert_eq!(out.items(), &[1, 2]);
    }

    #[test]
    fn union_domain_collected_in_first_appearance_order() {
        let lists = vec![tk(&[5, 1]), tk(&[1, 8])];
        let (universe, orders) = embed_over_union(&lists).unwrap();
        assert_eq!(universe, vec![5, 1, 8]);
        assert_eq!(orders.len(), 2);
        assert!(orders.iter().all(|o| o.len() == 3));
    }

    #[test]
    fn theorem9_bound_holds_in_embedded_space() {
        let lists = vec![
            tk(&[1, 2, 3]),
            tk(&[2, 1, 4]),
            tk(&[1, 5, 2]),
            tk(&[6, 2, 1]),
            tk(&[2, 3, 1]),
        ];
        let (universe, orders) = embed_over_union(&lists).unwrap();
        let n = universe.len();
        let k = 3;
        let out = aggregate_topk_lists(&lists, k, MedianPolicy::Lower).unwrap();
        // Re-embed the output for costing.
        let index: std::collections::HashMap<ElementId, ElementId> = universe
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as ElementId))
            .collect();
        let embedded_top: Vec<ElementId> = out.items().iter().map(|e| index[e]).collect();
        let embedded = BucketOrder::top_k(n, &embedded_top).unwrap();
        let cost = total_cost_x2(AggMetric::FProf, &embedded, &orders).unwrap();
        let alpha = TypeSeq::top_k(n, k).unwrap();
        let (_, opt) = footrule_optimal_of_type(&orders, &alpha).unwrap();
        assert!(cost <= 3 * opt, "{cost} > 3·{opt}");
    }

    #[test]
    fn errors() {
        assert!(aggregate_topk_lists(&[], 1, MedianPolicy::Lower).is_err());
        let lists = vec![tk(&[1, 2])];
        assert!(aggregate_topk_lists(&lists, 5, MedianPolicy::Lower).is_err());
        // k = 0 is legal and yields the empty list.
        let out = aggregate_topk_lists(&lists, 0, MedianPolicy::Lower).unwrap();
        assert_eq!(out.k(), 0);
    }
}
