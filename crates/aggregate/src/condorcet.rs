//! Condorcet analysis of a profile of partial rankings: the pairwise
//! majority digraph, Condorcet winners, the Smith set, and the extended
//! Condorcet criterion.
//!
//! Dwork et al. (WWW 2001) — the lineage this paper builds on — motivate
//! local Kemenization by the **extended Condorcet criterion**: if the
//! majority digraph partitions the candidates so that every member of one
//! side beats every member of the other, the aggregate should order the
//! sides accordingly. These tools quantify that property for our
//! aggregators (tested against [`crate::local::local_kemenize`]).

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// The pairwise majority digraph of a profile (ties in inputs count for
/// neither side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityGraph {
    n: usize,
    /// `beats[a * n + b]` ⟺ strictly more inputs rank `a` ahead of `b`
    /// than the reverse.
    beats: Vec<bool>,
}

impl MajorityGraph {
    /// Builds the majority digraph of a profile.
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
    pub fn build(inputs: &[BucketOrder]) -> Result<Self, AggregateError> {
        check_inputs(inputs)?;
        Ok(Self::from_tally(&ProfileTally::build(inputs)?))
    }

    /// Builds the majority digraph from a prebuilt pairwise tally: one
    /// pass over the upper triangle fills **both** directions of each
    /// pair from one margin read (the voter scan was already paid by
    /// the tally build, once for all consumers).
    pub fn from_tally(tally: &ProfileTally) -> Self {
        let n = tally.len();
        let mut beats = vec![false; n * n];
        for a in 0..n as ElementId {
            for b in a + 1..n as ElementId {
                let margin = tally.margin(a, b);
                if margin > 0 {
                    beats[a as usize * n + b as usize] = true;
                } else if margin < 0 {
                    beats[b as usize * n + a as usize] = true;
                }
            }
        }
        MajorityGraph { n, beats }
    }

    /// Refreshes the rows (and matching columns) named in `rows` from
    /// the tally — the dirty-row consumer hook for [`crate::dynamic`]:
    /// after an edit, recomputing just the rows drained by
    /// [`DynamicProfile::take_dirty`](crate::dynamic::DynamicProfile::take_dirty)
    /// leaves the graph equal to a full [`MajorityGraph::from_tally`]
    /// rebuild, because pairs between two clean rows are guaranteed
    /// unchanged.
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] if the tally's domain size
    /// differs from the graph's.
    pub fn refresh_rows(
        &mut self,
        tally: &ProfileTally,
        rows: &[ElementId],
    ) -> Result<(), AggregateError> {
        let n = self.n;
        if tally.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: tally.len(),
            });
        }
        for &a in rows {
            for b in 0..n as ElementId {
                if b == a {
                    continue;
                }
                let margin = tally.margin(a, b);
                self.beats[a as usize * n + b as usize] = margin > 0;
                self.beats[b as usize * n + a as usize] = margin < 0;
            }
        }
        Ok(())
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether a strict majority prefers `a` to `b`.
    pub fn beats(&self, a: ElementId, b: ElementId) -> bool {
        self.beats[a as usize * self.n + b as usize]
    }

    /// The Condorcet winner — an element beating every other — if one
    /// exists.
    pub fn condorcet_winner(&self) -> Option<ElementId> {
        (0..self.n as ElementId).find(|&a| {
            (0..self.n as ElementId).all(|b| b == a || self.beats(a, b))
        })
    }

    /// The Smith set: the smallest nonempty set of elements each of which
    /// beats every element outside the set. Computed as the top strongly
    /// connected component(s) of the "beats-or-ties" closure: we take the
    /// SCC condensation of the digraph with an edge `a → b` whenever `b`
    /// does **not** beat `a`, and return the unique source component.
    pub fn smith_set(&self) -> Vec<ElementId> {
        if self.n == 0 {
            return vec![];
        }
        // Edge a → b when NOT beats(b, a): a is "at least as strong".
        // The Smith set is the set of elements from which every element is
        // reachable in the beats-or-ties digraph — equivalently the top
        // cycle. Iterative algorithm: start with the element with the most
        // wins; grow the set while someone outside is not beaten by
        // everyone inside.
        let wins = |a: ElementId| -> usize {
            (0..self.n as ElementId).filter(|&b| self.beats(a, b)).count()
        };
        let mut best = 0 as ElementId;
        for a in 1..self.n as ElementId {
            if wins(a) > wins(best) {
                best = a;
            }
        }
        let mut in_set = vec![false; self.n];
        in_set[best as usize] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..self.n as ElementId {
                if in_set[b as usize] {
                    continue;
                }
                // b joins if some member fails to beat b.
                let must_join = (0..self.n as ElementId)
                    .any(|a| in_set[a as usize] && !self.beats(a, b));
                if must_join {
                    in_set[b as usize] = true;
                    changed = true;
                }
            }
        }
        (0..self.n as ElementId)
            .filter(|&e| in_set[e as usize])
            .collect()
    }

    /// Checks the **extended Condorcet criterion** for a full ranking:
    /// whenever the majority digraph has `a` beating `b` *and* the pair is
    /// "partitioned" (no majority cycle involves them — we test the local
    /// form used by Dwork et al.: `a` and `b` adjacent in the candidate
    /// with the loser ahead), the candidate must not order `b` ahead of
    /// `a`. Returns the first adjacent violation, if any.
    pub fn adjacent_condorcet_violation(
        &self,
        candidate: &BucketOrder,
    ) -> Option<(ElementId, ElementId)> {
        let perm = candidate.as_permutation()?;
        for w in perm.windows(2) {
            let (x, y) = (w[0], w[1]);
            // x immediately ahead of y although a majority prefers y.
            if self.beats(y, x) {
                return Some((x, y));
            }
        }
        None
    }
}

/// Whether `candidate` ranks every Smith-set element ahead of every
/// non-Smith element — the global half of the extended Condorcet
/// criterion.
///
/// # Errors
/// [`AggregateError::DomainMismatch`].
pub fn respects_smith_set(
    graph: &MajorityGraph,
    candidate: &BucketOrder,
) -> Result<bool, AggregateError> {
    if candidate.len() != graph.len() {
        return Err(AggregateError::DomainMismatch {
            expected: graph.len(),
            found: candidate.len(),
        });
    }
    let smith = graph.smith_set();
    let in_smith = {
        let mut v = vec![false; graph.len()];
        for &e in &smith {
            v[e as usize] = true;
        }
        v
    };
    for &s in &smith {
        for e in 0..graph.len() as ElementId {
            if !in_smith[e as usize] && !candidate.prefers(s, e) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::local_kemenize;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn condorcet_winner_detection() {
        // Element 0 beats everyone in a majority of the 3 inputs.
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[1, 3, 2, 4]),
            keys(&[4, 1, 2, 3]),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        assert_eq!(g.condorcet_winner(), Some(0));
        assert!(g.beats(0, 1));
        assert!(!g.beats(1, 0));
        assert_eq!(g.smith_set(), vec![0]);
    }

    #[test]
    fn condorcet_cycle_has_no_winner_and_full_smith_set() {
        // Classic rock-paper-scissors profile.
        let inputs = vec![
            BucketOrder::from_permutation(&[0, 1, 2]).unwrap(),
            BucketOrder::from_permutation(&[1, 2, 0]).unwrap(),
            BucketOrder::from_permutation(&[2, 0, 1]).unwrap(),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        assert_eq!(g.condorcet_winner(), None);
        assert_eq!(g.smith_set(), vec![0, 1, 2]);
    }

    #[test]
    fn ties_produce_no_edge() {
        let inputs = vec![keys(&[1, 1]), keys(&[1, 1])];
        let g = MajorityGraph::build(&inputs).unwrap();
        assert!(!g.beats(0, 1));
        assert!(!g.beats(1, 0));
        assert_eq!(g.condorcet_winner(), None);
        // Smith set is everything when nobody beats anybody.
        assert_eq!(g.smith_set(), vec![0, 1]);
    }

    #[test]
    fn smith_set_two_tiers() {
        // {0,1,2} cycle on top, {3,4} strictly below.
        let inputs = vec![
            BucketOrder::from_permutation(&[0, 1, 2, 3, 4]).unwrap(),
            BucketOrder::from_permutation(&[1, 2, 0, 4, 3]).unwrap(),
            BucketOrder::from_permutation(&[2, 0, 1, 3, 4]).unwrap(),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        assert_eq!(g.condorcet_winner(), None);
        assert_eq!(g.smith_set(), vec![0, 1, 2]);
        // An order putting 3 above the Smith set violates the criterion.
        let bad = BucketOrder::from_permutation(&[3, 0, 1, 2, 4]).unwrap();
        assert!(!respects_smith_set(&g, &bad).unwrap());
        let good = BucketOrder::from_permutation(&[2, 0, 1, 3, 4]).unwrap();
        assert!(respects_smith_set(&g, &good).unwrap());
    }

    #[test]
    fn local_kemenization_removes_adjacent_violations() {
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5]),
            keys(&[2, 1, 3, 5, 4]),
            keys(&[1, 3, 2, 4, 5]),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        let start = BucketOrder::from_permutation(&[4, 3, 2, 1, 0]).unwrap();
        assert!(g.adjacent_condorcet_violation(&start).is_some());
        let fixed = local_kemenize(&start, &inputs).unwrap();
        assert_eq!(
            g.adjacent_condorcet_violation(&fixed),
            None,
            "locally Kemeny-optimal rankings satisfy the adjacent criterion"
        );
    }

    #[test]
    fn partial_candidates_have_no_adjacent_check() {
        let inputs = vec![keys(&[1, 1, 2])];
        let g = MajorityGraph::build(&inputs).unwrap();
        assert_eq!(
            g.adjacent_condorcet_violation(&BucketOrder::trivial(3)),
            None
        );
    }

    #[test]
    fn refresh_rows_matches_full_rebuild() {
        let before = vec![keys(&[1, 2, 3, 4]), keys(&[2, 1, 4, 3]), keys(&[1, 1, 2, 2])];
        // Replace the last voter: pairs (0,1) and (2,3) flip relation.
        let after = vec![keys(&[1, 2, 3, 4]), keys(&[2, 1, 4, 3]), keys(&[2, 1, 3, 2])];
        let mut g = MajorityGraph::build(&before).unwrap();
        let tally = ProfileTally::build(&after).unwrap();
        g.refresh_rows(&tally, &[0, 1, 2, 3]).unwrap();
        assert_eq!(g, MajorityGraph::from_tally(&tally));
        // Refreshing no rows is a no-op; wrong domain is typed.
        let unchanged = g.clone();
        g.refresh_rows(&tally, &[]).unwrap();
        assert_eq!(g, unchanged);
        let small = ProfileTally::build(&[keys(&[1, 2])]).unwrap();
        assert!(matches!(
            g.refresh_rows(&small, &[0]),
            Err(AggregateError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn errors() {
        assert!(MajorityGraph::build(&[]).is_err());
        let g = MajorityGraph::build(&[keys(&[1, 2])]).unwrap();
        assert!(respects_smith_set(&g, &BucketOrder::trivial(3)).is_err());
        assert!(!g.is_empty());
        assert_eq!(g.len(), 2);
    }
}
