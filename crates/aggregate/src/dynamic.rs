//! The streaming profile engine: a [`ProfileTally`] and the per-element
//! median ranks, maintained **incrementally** under voter churn.
//!
//! Every batch aggregation path in this crate rebuilds its substrate
//! from scratch: `ProfileTally::build` is `O(m·n²)` and
//! [`median_positions`](crate::median::median_positions) is
//! `O(m·n log m)` on any profile change. For continuously-arriving vote
//! traffic that is the wrong shape — a single-voter edit perturbs the
//! pairwise tally by exactly one voter's contribution and shifts each
//! element's rank multiset by one value. [`DynamicProfile`] exploits
//! that locality:
//!
//! * [`push_voter`](DynamicProfile::push_voter) /
//!   [`remove_voter`](DynamicProfile::remove_voter) /
//!   [`replace_voter`](DynamicProfile::replace_voter) update the tally
//!   and the median-rank vector in `O(n²)` — **independent of the
//!   number of voters** `m`;
//! * removal retracts the engine's **stored** copy of the voter's
//!   ranking, so tally cells can never underflow, and removing an id
//!   that is not present is a typed
//!   [`AggregateError::UnknownVoter`] with state untouched — never a
//!   panic;
//! * a generation counter and [`snapshot`](DynamicProfile::snapshot)
//!   give batch consumers (kwiksort seeding, Schulze supports, local
//!   Kemenization, the CLI) a consistent read view: a
//!   [`DynamicSnapshot`] owns its tally and median vector, so held
//!   snapshots never observe later edits, even from other threads.
//!
//! # Update algebra
//!
//! The tally stores `strict(a, b)` and the ×2 weight
//! `w2(a, b) = 2·strict(a, b) + ties(a, b)`. One voter contributes, for
//! each pair it orders `(a` ahead of `b)`, `+1` to `strict(a, b)` and
//! `+2` to `w2(a, b)`; for each pair it ties, `+1` to both `w2(a, b)`
//! and `w2(b, a)`. Pushing applies that signed pass with `+1`, removal
//! with `−1` on the stored ranking — the same branchless comparison
//! kernel as the batch build (strict wins are `bucket(b) > bucket(a)`
//! over the contiguous bucket-index map, ties the equality lane), so
//! the maintained matrices stay **byte-identical**
//! to `ProfileTally::build` over the live voters (enforced by
//! `tests/dynamic_vs_rebuild.rs` at every step of random edit scripts).
//! The invariant `w2(a, b) = m + strict(a, b) − strict(b, a)` holds
//! after every edit because each voter's contribution satisfies it.
//!
//! Median ranks use one counting array per element over the half-unit
//! position grid `2..=2n` (positions of an `n`-element bucket order are
//! half-integers), plus a median pointer and a count of values strictly
//! below it. Inserting or deleting one position moves the pointer past
//! at most the populated values between the old and new median —
//! amortized `O(1)` per element per edit, `O(n)` per voter edit.
//!
//! # Dirty-row contract
//!
//! [`take_dirty`](DynamicProfile::take_dirty) drains the set of
//! elements whose tally **row**, majority relation, or median may have
//! changed since the last drain. Push and remove mark every row (the
//! voter count enters every weight and majority threshold); replace
//! marks exactly the endpoints of pairs the old and new ranking order
//! differently — rows outside the drained set are guaranteed
//! byte-identical, so row-local consumers refresh only what an update
//! touched: [`MajorityGraph::refresh_rows`](
//! crate::condorcet::MajorityGraph::refresh_rows), [`refresh_mc4_rows`](
//! crate::markov::refresh_mc4_rows), and `medrank`'s
//! `top_k_from_medians` in the access crate re-serve from the
//! maintained median vector.
//!
//! # Crossover
//!
//! An update-then-query cycle costs `O(n²)`; rebuild-then-query costs
//! `O(m·n²)`. The dynamic path therefore wins by a factor `Θ(m)` for
//! single-voter churn and the batch build wins only when most of the
//! profile changes between queries (fewer than a handful of surviving
//! voters per rebuild). `BENCH_dynamic.json` (the `bench_dynamic`
//! binary) records the measured trajectory; see DESIGN.md §3.3c.

use crate::error::check_inputs;
use crate::median::MedianPolicy;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::consistent::{induced_ranking, project_to_type};
use bucketrank_core::{BucketOrder, ElementId, Pos, TypeSeq};
use std::collections::HashMap;

/// Opaque handle for one live voter in a [`DynamicProfile`]; returned
/// by [`DynamicProfile::push_voter`] and never reused after removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VoterId(u64);

impl VoterId {
    /// The raw id, for persistence or logging.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`VoterId::raw`] (e.g. after
    /// deserialization). Presenting an id the engine never issued, or
    /// one already removed, yields [`AggregateError::UnknownVoter`].
    pub fn from_raw(raw: u64) -> Self {
        VoterId(raw)
    }
}

impl std::fmt::Display for VoterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "voter#{}", self.0)
    }
}

/// The set of elements whose tally row, majority relation, or median
/// may have changed since the last [`DynamicProfile::take_dirty`] — a
/// conservative over-approximation (see the [module docs](self) for
/// the exact contract). Rows **not** in the set are guaranteed
/// unchanged.
#[derive(Debug, Clone)]
pub struct DirtyRows {
    flags: Vec<bool>,
    rows: Vec<ElementId>,
}

impl DirtyRows {
    fn new(n: usize) -> Self {
        DirtyRows {
            flags: vec![false; n],
            rows: Vec::new(),
        }
    }

    fn mark(&mut self, e: ElementId) {
        if !self.flags[e as usize] {
            self.flags[e as usize] = true;
            self.rows.push(e);
        }
    }

    fn mark_all(&mut self) {
        for e in 0..self.flags.len() as ElementId {
            self.mark(e);
        }
    }

    /// Whether element `e`'s row is marked dirty.
    pub fn contains(&self, e: ElementId) -> bool {
        self.flags[e as usize]
    }

    /// The dirty rows, in first-marked order.
    pub fn rows(&self) -> &[ElementId] {
        &self.rows
    }

    /// Number of dirty rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no row is dirty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// One signed row pass of [`apply_voter`]: for every `b` in the run,
/// `strict(a, b)` moves by 1 when the voter ranks `b` strictly later
/// than `a` (`bb > ba`) and `w2(a, b)` by `2·win + tie` — the ×2
/// weight gains 2 per strict win and 1 per tie, the `p = ½` penalty.
/// Branchless compare-and-add over zipped slices, the same comparison
/// formulation as the batch build's kernel, so the maintained matrices
/// stay **byte-identical** to a fresh [`ProfileTally::build`].
#[inline]
fn apply_run(strict: &mut [u32], w2: &mut [u32], bof: &[u32], ba: u32, add: bool) {
    if add {
        for ((s, w), &bb) in strict.iter_mut().zip(w2.iter_mut()).zip(bof) {
            let win = u32::from(bb > ba);
            *s += win;
            *w += 2 * win + u32::from(bb == ba);
        }
    } else {
        for ((s, w), &bb) in strict.iter_mut().zip(w2.iter_mut()).zip(bof) {
            let win = u32::from(bb > ba);
            *s -= win;
            *w -= 2 * win + u32::from(bb == ba);
        }
    }
}

/// Applies one voter's contribution to the tally matrices with sign
/// `+1` (`add`) or `−1`: the same branchless comparison kernel as the
/// batch build, extended to maintain `w2` alongside `strict`. Each row
/// is split at the diagonal so the self-pair is never touched (an
/// element ties itself, which must not count), with the two halves
/// walked as contiguous zipped slices — no flattened `by_rank` scratch
/// and no double walk over `voter.buckets()`. Subtraction cannot
/// underflow when retracting a stored contribution: every cell is a
/// sum over live voters' contributions.
fn apply_voter(strict: &mut [u32], w2: &mut [u32], n: usize, voter: &BucketOrder, add: bool) {
    let bof = voter.bucket_indices();
    for a in 0..n {
        let ba = bof[a];
        let (s_lo, s_rest) = strict[a * n..(a + 1) * n].split_at_mut(a);
        let (w_lo, w_rest) = w2[a * n..(a + 1) * n].split_at_mut(a);
        apply_run(s_lo, w_lo, &bof[..a], ba, add);
        apply_run(&mut s_rest[1..], &mut w_rest[1..], &bof[a + 1..], ba, add);
    }
}

/// Restores the median-pointer invariant `lt ≤ k < lt + counts[med]`
/// for one element's rank multiset, where `lt` counts stored values
/// strictly below the pointer's value and `k` is the 0-based target
/// rank of the policy's median among the `m` stored values.
fn ms_rebalance(counts: &[u32], med: &mut usize, lt: &mut u32, k: u32) {
    while *lt > k {
        // Step to the previous populated value; its occupants move
        // from "strictly below" to "at the median".
        let mut p = *med;
        loop {
            p -= 1;
            if counts[p] > 0 {
                break;
            }
        }
        *lt -= counts[p];
        *med = p;
    }
    while *lt + counts[*med] <= k {
        *lt += counts[*med];
        let mut q = *med;
        loop {
            q += 1;
            if counts[q] > 0 {
                break;
            }
        }
        *med = q;
    }
}

/// Inserts one position value `v` into an element's rank multiset
/// (`new_m` = multiset size after the insert).
fn ms_insert(counts: &mut [u32], med: &mut usize, lt: &mut u32, v: usize, new_m: usize, k: u32) {
    counts[v] += 1;
    if new_m == 1 {
        *med = v;
        *lt = 0;
        return;
    }
    if v < *med {
        *lt += 1;
    }
    ms_rebalance(counts, med, lt, k);
}

/// Deletes one position value `v` from an element's rank multiset
/// (`new_m` = multiset size after the delete; the pointer is parked
/// when the multiset empties).
fn ms_remove(counts: &mut [u32], med: &mut usize, lt: &mut u32, v: usize, new_m: usize, k: u32) {
    counts[v] -= 1;
    if new_m == 0 {
        *lt = 0;
        return;
    }
    if v < *med {
        *lt -= 1;
    } else if v == *med && counts[*med] == 0 {
        // The median's value emptied: snap to the nearest populated
        // value — above first (`lt` unchanged), else below.
        if let Some(q) = (*med + 1..counts.len()).find(|&i| counts[i] > 0) {
            *med = q;
        } else {
            let p = (0..*med)
                .rev()
                .find(|&i| counts[i] > 0)
                .expect("nonempty multiset has a populated value");
            *lt -= counts[p];
            *med = p;
        }
    }
    ms_rebalance(counts, med, lt, k);
}

/// The streaming profile engine; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct DynamicProfile {
    /// Maintained in place by the signed voter pass; always consistent
    /// with `ProfileTally::build` over the live voters.
    tally: ProfileTally,
    policy: MedianPolicy,
    /// Stored rankings, keyed by raw voter id — removal retracts the
    /// stored copy, which is what makes underflow impossible.
    voters: HashMap<u64, BucketOrder>,
    next_id: u64,
    generation: u64,
    /// Counting-array width: half-unit positions of an `n`-element
    /// order lie in `2..=2n`, indexed directly.
    span: usize,
    /// `counts[e·span + v]` = live voters placing element `e` at
    /// half-unit position `v`.
    counts: Vec<u32>,
    /// Per-element median pointer (an index into the element's count
    /// row; meaningful only while voters are live).
    med: Vec<usize>,
    /// Per-element count of stored positions strictly below `med`.
    lt: Vec<u32>,
    dirty: DirtyRows,
}

impl DynamicProfile {
    /// The most voters the `u32` tally cells can hold (same bound as
    /// [`ProfileTally::build`], enforced here as a typed error instead
    /// of a panic).
    pub const MAX_VOTERS: usize = (u32::MAX / 2) as usize;

    /// An empty engine over a fixed `n`-element domain.
    pub fn new(n: usize, policy: MedianPolicy) -> Self {
        let span = 2 * n + 1;
        DynamicProfile {
            tally: ProfileTally::from_parts(n, 0, vec![0; n * n], vec![0; n * n]),
            policy,
            voters: HashMap::new(),
            next_id: 0,
            generation: 0,
            span,
            counts: vec![0; n * span],
            med: vec![0; n],
            lt: vec![0; n],
            dirty: DirtyRows::new(n),
        }
    }

    /// Seeds an engine from a batch profile (one push per input, in
    /// order); the returned ids parallel `inputs`.
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] /
    /// [`AggregateError::DomainMismatch`] /
    /// [`AggregateError::TooManyVoters`].
    pub fn from_profile(
        inputs: &[BucketOrder],
        policy: MedianPolicy,
    ) -> Result<(Self, Vec<VoterId>), AggregateError> {
        let n = check_inputs(inputs)?;
        let mut dp = DynamicProfile::new(n, policy);
        let mut ids = Vec::with_capacity(inputs.len());
        for r in inputs {
            ids.push(dp.push_voter(r.clone())?);
        }
        Ok((dp, ids))
    }

    /// Rebuilds an engine from stored `(raw id, ranking)` pairs plus
    /// the id counter to resume from — the restore path for durability
    /// layers that checkpoint a profile and fault it back in. Ids are
    /// preserved exactly (a voter keeps its pre-checkpoint handle) and
    /// the next push is assigned `next_id`, so a restored engine is
    /// indistinguishable from one that never left memory.
    ///
    /// The generation counter restarts at the number of restored
    /// voters, matching an engine built by pushing them in order.
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] /
    /// [`AggregateError::TooManyVoters`] as for pushes;
    /// [`AggregateError::InvalidVoterId`] on a duplicate id or an id
    /// not strictly below `next_id` (either means the stored state is
    /// corrupt — restoring it would double-count a voter or let a
    /// future push collide with a live id).
    pub fn from_voters<I>(
        n: usize,
        policy: MedianPolicy,
        voters: I,
        next_id: u64,
    ) -> Result<Self, AggregateError>
    where
        I: IntoIterator<Item = (u64, BucketOrder)>,
    {
        let mut dp = DynamicProfile::new(n, policy);
        for (id, ranking) in voters {
            if id >= next_id || dp.voters.contains_key(&id) {
                return Err(AggregateError::InvalidVoterId { id });
            }
            // push_voter assigns `next_id` and bumps it; steering the
            // counter per voter reuses the whole validated edit path
            // (domain check, capacity check, tally + median updates).
            dp.next_id = id;
            dp.push_voter(ranking)?;
        }
        dp.next_id = next_id;
        Ok(dp)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.tally.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.tally.is_empty()
    }

    /// Number of live voters.
    pub fn voters(&self) -> usize {
        self.tally.voters()
    }

    /// The median policy the maintained median vector follows.
    pub fn policy(&self) -> MedianPolicy {
        self.policy
    }

    /// The edit counter: incremented by every successful push, remove
    /// or replace (failed edits leave it untouched). Snapshots carry
    /// the generation they were taken at, so consumers can detect
    /// staleness cheaply.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The stored ranking of a live voter.
    pub fn get_voter(&self, id: VoterId) -> Option<&BucketOrder> {
        self.voters.get(&id.0)
    }

    /// The raw id the next successful push will be assigned. Durability
    /// layers use this to write the push's log record *before* applying
    /// it (write-ahead order) with the exact id the reply will carry.
    pub fn next_push_id(&self) -> u64 {
        self.next_id
    }

    /// The live voter ids, ascending (insertion order — ids are never
    /// reused).
    pub fn voter_ids(&self) -> Vec<VoterId> {
        let mut ids: Vec<VoterId> = self.voters.keys().map(|&k| VoterId(k)).collect();
        ids.sort_unstable();
        ids
    }

    /// The current-epoch tally — a zero-cost borrow, valid until the
    /// next `&mut self` edit. For a view that survives concurrent
    /// edits, take a [`snapshot`](DynamicProfile::snapshot).
    pub fn tally(&self) -> &ProfileTally {
        &self.tally
    }

    /// 0-based rank of the policy's median among `m` sorted values.
    fn target_rank(&self, m: usize) -> u32 {
        match self.policy {
            MedianPolicy::Lower => ((m - 1) / 2) as u32,
            MedianPolicy::Upper => (m / 2) as u32,
        }
    }

    /// The maintained median vector as positions.
    fn medians_vec(&self) -> Vec<Pos> {
        self.med
            .iter()
            .map(|&v| Pos::from_half_units(v as i64))
            .collect()
    }

    /// Pushes a new voter; `O(n²)`.
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] if the ranking's domain size
    /// differs; [`AggregateError::TooManyVoters`] at the `u32` tally
    /// capacity. Either way the engine is left untouched.
    pub fn push_voter(&mut self, ranking: BucketOrder) -> Result<VoterId, AggregateError> {
        let n = self.tally.len();
        if ranking.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: ranking.len(),
            });
        }
        let m = self.tally.voters();
        if m >= Self::MAX_VOTERS {
            return Err(AggregateError::TooManyVoters {
                limit: Self::MAX_VOTERS,
            });
        }
        {
            let (strict, w2) = self.tally.parts_mut();
            apply_voter(strict, w2, n, &ranking, true);
        }
        self.tally.set_voters(m + 1);
        let k = self.target_rank(m + 1);
        for (e, p) in ranking.positions().iter().enumerate() {
            let row = &mut self.counts[e * self.span..(e + 1) * self.span];
            ms_insert(
                row,
                &mut self.med[e],
                &mut self.lt[e],
                p.half_units() as usize,
                m + 1,
                k,
            );
        }
        self.generation += 1;
        self.dirty.mark_all();
        let id = self.next_id;
        self.next_id += 1;
        self.voters.insert(id, ranking);
        Ok(VoterId(id))
    }

    /// Removes a live voter and returns its stored ranking; `O(n²)`.
    ///
    /// # Errors
    /// [`AggregateError::UnknownVoter`] if `id` is not live — typed,
    /// never a panic, with the engine untouched (in particular no tally
    /// cell is decremented).
    pub fn remove_voter(&mut self, id: VoterId) -> Result<BucketOrder, AggregateError> {
        let ranking = self
            .voters
            .remove(&id.0)
            .ok_or(AggregateError::UnknownVoter { id: id.0 })?;
        let n = self.tally.len();
        let m = self.tally.voters();
        {
            let (strict, w2) = self.tally.parts_mut();
            apply_voter(strict, w2, n, &ranking, false);
        }
        self.tally.set_voters(m - 1);
        let k = if m > 1 { self.target_rank(m - 1) } else { 0 };
        for (e, p) in ranking.positions().iter().enumerate() {
            let row = &mut self.counts[e * self.span..(e + 1) * self.span];
            ms_remove(
                row,
                &mut self.med[e],
                &mut self.lt[e],
                p.half_units() as usize,
                m - 1,
                k,
            );
        }
        self.generation += 1;
        self.dirty.mark_all();
        Ok(ranking)
    }

    /// Replaces a live voter's ranking in place (the voter count is
    /// unchanged) and returns the previous ranking; `O(n²)`. Marks
    /// dirty exactly the endpoints of pairs the old and new ranking
    /// order differently — an element whose median moved is always
    /// among them, because a position change implies a relation change.
    ///
    /// # Errors
    /// [`AggregateError::UnknownVoter`] /
    /// [`AggregateError::DomainMismatch`]; the engine is untouched on
    /// error.
    pub fn replace_voter(
        &mut self,
        id: VoterId,
        ranking: BucketOrder,
    ) -> Result<BucketOrder, AggregateError> {
        let n = self.tally.len();
        if ranking.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: ranking.len(),
            });
        }
        let old = self
            .voters
            .get(&id.0)
            .cloned()
            .ok_or(AggregateError::UnknownVoter { id: id.0 })?;
        let m = self.tally.voters();
        {
            let (strict, w2) = self.tally.parts_mut();
            apply_voter(strict, w2, n, &old, false);
            apply_voter(strict, w2, n, &ranking, true);
        }
        let k_rm = if m > 1 { self.target_rank(m - 1) } else { 0 };
        let k_ins = self.target_rank(m);
        let old_pos = old.positions();
        let new_pos = ranking.positions();
        for e in 0..n {
            let ov = old_pos[e].half_units() as usize;
            let nv = new_pos[e].half_units() as usize;
            if ov == nv {
                continue;
            }
            let row = &mut self.counts[e * self.span..(e + 1) * self.span];
            ms_remove(row, &mut self.med[e], &mut self.lt[e], ov, m - 1, k_rm);
            ms_insert(row, &mut self.med[e], &mut self.lt[e], nv, m, k_ins);
        }
        let ob = old.bucket_indices();
        let nb = ranking.bucket_indices();
        for a in 0..n {
            for b in (a + 1)..n {
                if ob[a].cmp(&ob[b]) != nb[a].cmp(&nb[b]) {
                    self.dirty.mark(a as ElementId);
                    self.dirty.mark(b as ElementId);
                }
            }
        }
        self.generation += 1;
        self.voters.insert(id.0, ranking);
        Ok(old)
    }

    /// The maintained per-element median of the live voters' positions
    /// (equals [`median_positions`](crate::median::median_positions)
    /// over the live rankings under this engine's policy).
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] when no voter is live.
    pub fn median_positions(&self) -> Result<Vec<Pos>, AggregateError> {
        if self.tally.voters() == 0 {
            return Err(AggregateError::NoInputs);
        }
        Ok(self.medians_vec())
    }

    /// The partial ranking induced by the maintained median vector
    /// (equals [`median_order`](crate::median::median_order)).
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`].
    pub fn median_order(&self) -> Result<BucketOrder, AggregateError> {
        Ok(induced_ranking(&self.median_positions()?))
    }

    /// The rows dirtied since the last [`take_dirty`](Self::take_dirty)
    /// (without draining them).
    pub fn dirty_rows(&self) -> &DirtyRows {
        &self.dirty
    }

    /// Drains and returns the dirty-row set, leaving it empty; see the
    /// [module docs](self) for the contract. Taking a snapshot does
    /// **not** drain.
    pub fn take_dirty(&mut self) -> DirtyRows {
        std::mem::replace(&mut self.dirty, DirtyRows::new(self.tally.len()))
    }

    /// A consistent owned read view of the current epoch: the tally,
    /// the median vector, and the generation, cloned atomically (this
    /// method takes `&self`, so no edit can interleave). Held
    /// snapshots never observe later edits.
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] when no voter is live (matching
    /// the batch builders' contract).
    pub fn snapshot(&self) -> Result<DynamicSnapshot, AggregateError> {
        if self.tally.voters() == 0 {
            return Err(AggregateError::NoInputs);
        }
        Ok(DynamicSnapshot {
            generation: self.generation,
            medians: self.medians_vec(),
            tally: self.tally.clone(),
        })
    }
}

/// An immutable consistent view of a [`DynamicProfile`] epoch: owns
/// the tally and median vector, so it is `Send + Sync` and unaffected
/// by later edits. Batch consumers run on it unchanged — the tally
/// feeds kwiksort, Schulze, MC4 and local Kemenization exactly as a
/// freshly built one would, and the shaping methods mirror the batch
/// aggregators in [`crate::median`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicSnapshot {
    generation: u64,
    tally: ProfileTally,
    medians: Vec<Pos>,
}

impl DynamicSnapshot {
    /// The generation the snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pairwise tally at the snapshot epoch.
    pub fn tally(&self) -> &ProfileTally {
        &self.tally
    }

    /// Consumes the snapshot, keeping only the tally.
    pub fn into_tally(self) -> ProfileTally {
        self.tally
    }

    /// The median-rank vector at the snapshot epoch.
    pub fn median_positions(&self) -> &[Pos] {
        &self.medians
    }

    /// The partial ranking induced by the medians (elements with equal
    /// medians tied) — [`median_order`](crate::median::median_order)
    /// of the live voters at the epoch.
    pub fn median_order(&self) -> BucketOrder {
        induced_ranking(&self.medians)
    }

    /// Median aggregation into a top-`k` list — [`aggregate_top_k`](
    /// crate::median::aggregate_top_k) of the live voters at the
    /// epoch, with the same Theorem 9 factor-3 guarantee.
    ///
    /// # Errors
    /// [`AggregateError::InvalidK`].
    pub fn top_k(&self, k: usize) -> Result<BucketOrder, AggregateError> {
        let alpha = TypeSeq::top_k(self.medians.len(), k)?;
        Ok(project_to_type(&self.medians, &alpha)?)
    }

    /// Median aggregation into a full ranking — [`aggregate_full`](
    /// crate::median::aggregate_full) of the live voters at the epoch
    /// (Theorem 11).
    pub fn full_ranking(&self) -> BucketOrder {
        let alpha = TypeSeq::full(self.medians.len());
        project_to_type(&self.medians, &alpha).expect("full type always matches the domain")
    }

    /// Median aggregation into a prescribed type — [`aggregate_to_type`](
    /// crate::median::aggregate_to_type) of the live voters at the
    /// epoch (Corollary 30).
    ///
    /// # Errors
    /// [`AggregateError::TypeSizeMismatch`].
    pub fn to_type(&self, alpha: &TypeSeq) -> Result<BucketOrder, AggregateError> {
        Ok(project_to_type(&self.medians, alpha)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::{aggregate_top_k, median_positions, median_order};

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    fn live_inputs(dp: &DynamicProfile) -> Vec<BucketOrder> {
        dp.voter_ids()
            .into_iter()
            .map(|id| dp.get_voter(id).unwrap().clone())
            .collect()
    }

    fn assert_matches_rebuild(dp: &DynamicProfile) {
        let inputs = live_inputs(dp);
        if inputs.is_empty() {
            assert_eq!(dp.voters(), 0);
            assert!(dp.tally().weights_x2().iter().all(|&x| x == 0));
            assert!(dp.tally().strict_counts().iter().all(|&x| x == 0));
            assert!(matches!(dp.snapshot(), Err(AggregateError::NoInputs)));
            return;
        }
        let rebuilt = ProfileTally::build(&inputs).unwrap();
        assert_eq!(dp.tally(), &rebuilt);
        assert_eq!(
            dp.median_positions().unwrap(),
            median_positions(&inputs, dp.policy()).unwrap()
        );
    }

    #[test]
    fn push_remove_replace_track_the_batch_build() {
        for policy in [MedianPolicy::Lower, MedianPolicy::Upper] {
            let mut dp = DynamicProfile::new(4, policy);
            let a = dp.push_voter(keys(&[1, 2, 3, 4])).unwrap();
            assert_matches_rebuild(&dp);
            let b = dp.push_voter(keys(&[2, 2, 1, 1])).unwrap();
            assert_matches_rebuild(&dp);
            let _c = dp.push_voter(BucketOrder::trivial(4)).unwrap();
            assert_matches_rebuild(&dp);
            dp.replace_voter(b, keys(&[4, 3, 2, 1])).unwrap();
            assert_matches_rebuild(&dp);
            dp.remove_voter(a).unwrap();
            assert_matches_rebuild(&dp);
        }
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let mut dp = DynamicProfile::new(3, MedianPolicy::Lower);
        let ids: Vec<VoterId> = (0..3)
            .map(|i| dp.push_voter(keys(&[i, 2, 1])).unwrap())
            .collect();
        for id in ids {
            dp.remove_voter(id).unwrap();
            assert_matches_rebuild(&dp);
        }
        assert_eq!(dp.voters(), 0);
        dp.push_voter(keys(&[1, 1, 2])).unwrap();
        assert_matches_rebuild(&dp);
    }

    #[test]
    fn unknown_voter_is_typed_and_leaves_state_untouched() {
        let mut dp = DynamicProfile::new(3, MedianPolicy::Lower);
        let id = dp.push_voter(keys(&[1, 2, 3])).unwrap();
        let before = dp.snapshot().unwrap();
        let gen = dp.generation();
        let ghost = VoterId::from_raw(id.raw() + 100);
        assert_eq!(
            dp.remove_voter(ghost),
            Err(AggregateError::UnknownVoter { id: ghost.raw() })
        );
        assert_eq!(
            dp.replace_voter(ghost, keys(&[3, 2, 1])),
            Err(AggregateError::UnknownVoter { id: ghost.raw() })
        );
        // Double-remove: the second must be the typed error, not an
        // underflow.
        dp.remove_voter(id).unwrap();
        assert_eq!(
            dp.remove_voter(id),
            Err(AggregateError::UnknownVoter { id: id.raw() })
        );
        dp.push_voter(keys(&[1, 2, 3])).unwrap();
        let after = dp.snapshot().unwrap();
        assert_eq!(before.tally(), after.tally());
        assert!(dp.generation() > gen);
    }

    #[test]
    fn domain_mismatch_rejected_before_mutation() {
        let mut dp = DynamicProfile::new(3, MedianPolicy::Lower);
        let id = dp.push_voter(keys(&[1, 2, 3])).unwrap();
        let gen = dp.generation();
        assert!(matches!(
            dp.push_voter(BucketOrder::trivial(4)),
            Err(AggregateError::DomainMismatch { .. })
        ));
        assert!(matches!(
            dp.replace_voter(id, BucketOrder::trivial(2)),
            Err(AggregateError::DomainMismatch { .. })
        ));
        assert_eq!(dp.generation(), gen);
    }

    #[test]
    fn replace_marks_exactly_the_changed_pairs() {
        let mut dp = DynamicProfile::new(4, MedianPolicy::Lower);
        let id = dp.push_voter(keys(&[1, 2, 3, 4])).unwrap();
        dp.push_voter(keys(&[1, 1, 2, 2])).unwrap();
        dp.take_dirty();
        // Identical replacement: nothing changes, nothing is dirty.
        dp.replace_voter(id, keys(&[1, 2, 3, 4])).unwrap();
        assert!(dp.dirty_rows().is_empty());
        // Swap elements 2 and 3 only: exactly that pair's endpoints.
        dp.replace_voter(id, keys(&[1, 2, 4, 3])).unwrap();
        let dirty = dp.take_dirty();
        let mut rows = dirty.rows().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 3]);
        assert!(dirty.contains(2) && !dirty.contains(0));
        assert_eq!(dirty.len(), 2);
        // Push and remove dirty every row.
        dp.push_voter(BucketOrder::trivial(4)).unwrap();
        assert_eq!(dp.take_dirty().len(), 4);
    }

    #[test]
    fn snapshot_is_isolated_and_generation_advances() {
        let mut dp = DynamicProfile::new(3, MedianPolicy::Upper);
        dp.push_voter(keys(&[1, 2, 3])).unwrap();
        let snap = dp.snapshot().unwrap();
        dp.push_voter(keys(&[3, 2, 1])).unwrap();
        assert_eq!(snap.tally().voters(), 1);
        assert_eq!(snap.median_positions(), &keys(&[1, 2, 3]).positions()[..]);
        let later = dp.snapshot().unwrap();
        assert!(later.generation() > snap.generation());
        assert_ne!(later, snap);
    }

    #[test]
    fn snapshot_shapes_match_batch_aggregators() {
        let inputs = vec![keys(&[1, 1, 2, 3]), keys(&[2, 1, 3, 3]), keys(&[1, 2, 2, 1])];
        for policy in [MedianPolicy::Lower, MedianPolicy::Upper] {
            let (dp, _) = DynamicProfile::from_profile(&inputs, policy).unwrap();
            let snap = dp.snapshot().unwrap();
            assert_eq!(snap.full_ranking(), crate::median::aggregate_full(&inputs, policy).unwrap());
            for k in 0..=4 {
                assert_eq!(snap.top_k(k).unwrap(), aggregate_top_k(&inputs, k, policy).unwrap());
            }
            assert!(snap.top_k(9).is_err());
            assert_eq!(snap.median_order(), median_order(&inputs, policy).unwrap());
            let alpha = TypeSeq::top_k(4, 2).unwrap();
            assert_eq!(
                snap.to_type(&alpha).unwrap(),
                crate::median::aggregate_to_type(&inputs, &alpha, policy).unwrap()
            );
        }
    }

    #[test]
    fn degenerate_domains() {
        // n = 0: edits succeed, matrices stay empty.
        let mut dp = DynamicProfile::new(0, MedianPolicy::Lower);
        let id = dp.push_voter(BucketOrder::trivial(0)).unwrap();
        assert_eq!(dp.median_positions().unwrap(), vec![]);
        assert_eq!(dp.snapshot().unwrap().median_positions(), &[]);
        dp.remove_voter(id).unwrap();
        // n = 1: the single element's median never moves.
        let mut dp = DynamicProfile::new(1, MedianPolicy::Upper);
        dp.push_voter(BucketOrder::trivial(1)).unwrap();
        dp.push_voter(BucketOrder::trivial(1)).unwrap();
        assert_eq!(dp.median_positions().unwrap(), vec![Pos::from_rank(1)]);
        assert_matches_rebuild(&dp);
    }

    #[test]
    fn from_profile_errors() {
        assert!(matches!(
            DynamicProfile::from_profile(&[], MedianPolicy::Lower),
            Err(AggregateError::NoInputs)
        ));
        let bad = [BucketOrder::trivial(2), BucketOrder::trivial(3)];
        assert!(matches!(
            DynamicProfile::from_profile(&bad, MedianPolicy::Lower),
            Err(AggregateError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn from_voters_restores_state_and_ids() {
        // Build an engine with a gap in the id space (remove the middle
        // voter), restore from its stored pairs, and demand the restored
        // engine is indistinguishable: same tally, medians, ids, and the
        // same id assigned to the next push.
        let mut dp = DynamicProfile::new(3, MedianPolicy::Upper);
        let _a = dp.push_voter(keys(&[1, 2, 3])).unwrap();
        let b = dp.push_voter(keys(&[3, 2, 1])).unwrap();
        let _c = dp.push_voter(keys(&[2, 2, 2])).unwrap();
        dp.remove_voter(b).unwrap();
        let pairs: Vec<(u64, BucketOrder)> = dp
            .voter_ids()
            .into_iter()
            .map(|id| (id.raw(), dp.get_voter(id).unwrap().clone()))
            .collect();
        let mut restored =
            DynamicProfile::from_voters(3, MedianPolicy::Upper, pairs.clone(), 3).unwrap();
        assert_eq!(restored.tally(), dp.tally());
        assert_eq!(
            restored.median_positions().unwrap(),
            dp.median_positions().unwrap()
        );
        assert_eq!(restored.voter_ids(), dp.voter_ids());
        assert_eq!(
            restored.push_voter(keys(&[1, 1, 1])).unwrap(),
            dp.push_voter(keys(&[1, 1, 1])).unwrap()
        );
        assert_matches_rebuild(&restored);

        // Duplicate id and id ≥ next_id are typed corruption.
        let dup = vec![pairs[0].clone(), pairs[0].clone()];
        assert!(matches!(
            DynamicProfile::from_voters(3, MedianPolicy::Upper, dup, 3),
            Err(AggregateError::InvalidVoterId { id: 0 })
        ));
        assert!(matches!(
            DynamicProfile::from_voters(3, MedianPolicy::Upper, pairs, 2),
            Err(AggregateError::InvalidVoterId { id: 2 })
        ));
    }

    #[test]
    fn voter_id_display_and_roundtrip() {
        let mut dp = DynamicProfile::new(2, MedianPolicy::Lower);
        let id = dp.push_voter(keys(&[1, 2])).unwrap();
        assert_eq!(VoterId::from_raw(id.raw()), id);
        assert!(id.to_string().contains(&id.raw().to_string()));
        assert_eq!(dp.voter_ids(), vec![id]);
        assert_eq!(dp.get_voter(id), Some(&keys(&[1, 2])));
    }
}
