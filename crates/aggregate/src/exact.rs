//! Exact optimal aggregations, for measuring the approximation quality of
//! the median algorithm (experiments E3/E8).
//!
//! * [`optimal_partial_ranking`] — global optimum over **all** bucket
//!   orders by enumeration (Fubini-many candidates; small domains only).
//! * [`optimal_of_type`] — optimum over bucket orders of one type.
//! * [`kemeny_optimal_full`] — optimal **full ranking** under the `Kprof`
//!   objective by Held–Karp dynamic programming over subsets
//!   (`O(2ⁿ·n²)`), the tie-aware generalization of Kemeny aggregation.
//! * [`footrule_optimal_full`] — optimal full ranking under the `Fprof`
//!   objective via minimum-cost perfect matching (the paper's footnote 4).

use crate::cost::{total_cost_x2, AggMetric};
use crate::error::check_inputs;
use crate::hungarian::solve_assignment;
use crate::AggregateError;
use bucketrank_core::consistent::all_bucket_orders;
use bucketrank_core::{BucketOrder, ElementId, Pos, TypeSeq};

/// Maximum domain size accepted by the enumeration-based exact optimizers
/// (`fubini(8) = 545 835` candidates).
pub const MAX_EXACT_N: usize = 8;

/// Maximum domain size accepted by the Held–Karp Kemeny optimizer.
pub const MAX_KEMENY_N: usize = 18;

/// The optimal partial ranking: minimizes `Σ_i d(τ, σ_i)` over **all**
/// bucket orders `τ` on the domain. Returns `(optimum, cost_x2)`.
///
/// # Errors
/// [`AggregateError::DomainTooLarge`] beyond [`MAX_EXACT_N`];
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn optimal_partial_ranking(
    inputs: &[BucketOrder],
    metric: AggMetric,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    if n > MAX_EXACT_N {
        return Err(AggregateError::DomainTooLarge {
            n,
            max: MAX_EXACT_N,
        });
    }
    let mut best: Option<(BucketOrder, u64)> = None;
    for cand in all_bucket_orders(n) {
        let c = total_cost_x2(metric, &cand, inputs)?;
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((cand, c));
        }
    }
    Ok(best.expect("domain enumeration is nonempty"))
}

/// The optimal partial ranking among those of type `alpha`.
/// Returns `(optimum, cost_x2)`.
///
/// # Errors
/// As [`optimal_partial_ranking`], plus
/// [`AggregateError::TypeSizeMismatch`] if `alpha` does not fit the domain.
pub fn optimal_of_type(
    inputs: &[BucketOrder],
    alpha: &TypeSeq,
    metric: AggMetric,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    if alpha.domain_size() != n {
        return Err(AggregateError::TypeSizeMismatch {
            type_total: alpha.domain_size(),
            domain_size: n,
        });
    }
    if n > MAX_EXACT_N {
        return Err(AggregateError::DomainTooLarge {
            n,
            max: MAX_EXACT_N,
        });
    }
    let mut best: Option<(BucketOrder, u64)> = None;
    for cand in all_bucket_orders(n) {
        if &cand.type_seq() != alpha {
            continue;
        }
        let c = total_cost_x2(metric, &cand, inputs)?;
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((cand, c));
        }
    }
    Ok(best.expect("every type has at least one order"))
}

/// The optimal **full ranking** under the `Kprof` objective, by Held–Karp
/// dynamic programming over subsets. Accepts partial-ranking inputs (the
/// pairwise cost of putting `a` ahead of `b` is `2` per input preferring
/// `b`, `1` per input tying them). Returns `(optimum, cost_x2)`.
///
/// For full-ranking inputs this is exact Kemeny aggregation.
///
/// # Errors
/// [`AggregateError::DomainTooLarge`] beyond [`MAX_KEMENY_N`];
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn kemeny_optimal_full(
    inputs: &[BucketOrder],
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    if n > MAX_KEMENY_N {
        return Err(AggregateError::DomainTooLarge {
            n,
            max: MAX_KEMENY_N,
        });
    }
    if n == 0 {
        return Ok((BucketOrder::trivial(0), 0));
    }
    // w[a][b] = cost (×2) of ranking a strictly ahead of b.
    let mut w = vec![0u64; n * n];
    for s in inputs {
        for a in 0..n as ElementId {
            for b in 0..n as ElementId {
                if a == b {
                    continue;
                }
                let cell = &mut w[a as usize * n + b as usize];
                if s.prefers(b, a) {
                    *cell += 2;
                } else if s.is_tied(a, b) {
                    *cell += 1;
                }
            }
        }
    }
    // dp[mask] = min cost of ordering the elements of mask as a prefix.
    let full = (1usize << n) - 1;
    let mut dp = vec![u64::MAX; full + 1];
    let mut parent = vec![usize::MAX; full + 1]; // element appended last
    dp[0] = 0;
    for mask in 0..=full {
        if dp[mask] == u64::MAX {
            continue;
        }
        for e in 0..n {
            if mask >> e & 1 == 1 {
                continue;
            }
            // Append e after the prefix: pay w[s][e] for every s in mask.
            let mut add = 0u64;
            let mut rem = mask;
            while rem != 0 {
                let s = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                add += w[s * n + e];
            }
            let next = mask | 1 << e;
            let cand = dp[mask] + add;
            if cand < dp[next] {
                dp[next] = cand;
                parent[next] = e;
            }
        }
    }
    let mut perm = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let e = parent[mask];
        perm.push(e as ElementId);
        mask &= !(1 << e);
    }
    perm.reverse();
    let order = BucketOrder::from_permutation(&perm).expect("permutation by construction");
    Ok((order, dp[full]))
}

/// The optimal **full ranking** under the `Fprof` objective via minimum-
/// cost perfect matching between elements and output ranks (the paper's
/// footnote 4). Returns `(optimum, cost_x2)`.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn footrule_optimal_full(
    inputs: &[BucketOrder],
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    if n == 0 {
        return Ok((BucketOrder::trivial(0), 0));
    }
    // cost[d][r] = Σ_i |pos(rank r+1) − σ_i(d)| in half-units.
    let mut cost = vec![0i64; n * n];
    for d in 0..n as ElementId {
        for r in 0..n {
            let rank_pos = Pos::from_rank(r as i64 + 1);
            let c: u64 = inputs
                .iter()
                .map(|s| rank_pos.abs_diff(s.position(d)))
                .sum();
            cost[d as usize * n + r] = c as i64;
        }
    }
    let (assignment, total) = solve_assignment(n, &cost);
    let mut perm = vec![0 as ElementId; n];
    for (d, &r) in assignment.iter().enumerate() {
        perm[r] = d as ElementId;
    }
    let order = BucketOrder::from_permutation(&perm).expect("assignment is a permutation");
    Ok((order, total as u64))
}

/// A lower bound on the `Kprof` cost of **any** aggregation (full or
/// partial): for each pair, every output must pay at least
/// `min(cost of a ahead, cost of b ahead, cost of tie)` summed over the
/// inputs. `O(n²·m)`; sound at any domain size, which makes it the
/// reference point for quality experiments beyond the exact optimizers'
/// reach.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn kprof_lower_bound_x2(inputs: &[BucketOrder]) -> Result<u64, AggregateError> {
    let n = check_inputs(inputs)?;
    let mut total = 0u64;
    for a in 0..n as ElementId {
        for b in a + 1..n as ElementId {
            let mut ahead_a = 0u64; // cost ×2 of ranking a ahead of b
            let mut ahead_b = 0u64;
            let mut tie = 0u64;
            for s in inputs {
                if s.prefers(a, b) {
                    ahead_b += 2;
                    tie += 1;
                } else if s.prefers(b, a) {
                    ahead_a += 2;
                    tie += 1;
                } else {
                    ahead_a += 1;
                    ahead_b += 1;
                }
            }
            total += ahead_a.min(ahead_b).min(tie);
        }
    }
    Ok(total)
}

/// The optimal partial ranking **of a prescribed type** under the `Fprof`
/// objective, in polynomial time: a minimum-cost perfect matching between
/// elements and the type's `n` *slots*, where every slot of bucket `B`
/// carries the bucket position `pos(B)`. Returns `(optimum, cost_x2)`.
///
/// Because `Fprof` is a per-element `L1` sum, the optimal type-α
/// aggregation is exactly this transportation problem — which makes the
/// Theorem 9 comparison (median top-k vs the *true* optimal top-k list)
/// computable at domain sizes far beyond the `fubini(n)` enumeration
/// limit. `O(n³)` via the Hungarian algorithm.
///
/// # Errors
/// [`AggregateError::NoInputs`], [`AggregateError::DomainMismatch`], or
/// [`AggregateError::TypeSizeMismatch`].
pub fn footrule_optimal_of_type(
    inputs: &[BucketOrder],
    alpha: &TypeSeq,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    if alpha.domain_size() != n {
        return Err(AggregateError::TypeSizeMismatch {
            type_total: alpha.domain_size(),
            domain_size: n,
        });
    }
    if n == 0 {
        return Ok((BucketOrder::trivial(0), 0));
    }
    // slot_pos[s] = position of the bucket that slot s belongs to;
    // slot_bucket[s] = that bucket's index.
    let mut slot_pos = Vec::with_capacity(n);
    let mut slot_bucket = Vec::with_capacity(n);
    for (bi, (&size, &p)) in alpha
        .sizes()
        .iter()
        .zip(alpha.positions().iter())
        .enumerate()
    {
        for _ in 0..size {
            slot_pos.push(p);
            slot_bucket.push(bi);
        }
    }
    let mut cost = vec![0i64; n * n];
    for d in 0..n as ElementId {
        for (s, &p) in slot_pos.iter().enumerate() {
            let c: u64 = inputs.iter().map(|sig| p.abs_diff(sig.position(d))).sum();
            cost[d as usize * n + s] = c as i64;
        }
    }
    let (assignment, total) = solve_assignment(n, &cost);
    let mut buckets: Vec<Vec<ElementId>> = vec![Vec::new(); alpha.num_buckets()];
    for (d, &s) in assignment.iter().enumerate() {
        buckets[slot_bucket[s]].push(d as ElementId);
    }
    let order = BucketOrder::from_buckets(n, buckets).expect("slots realize the type");
    Ok((order, total as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::median::{aggregate_full, MedianPolicy};

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn unanimous_inputs_are_optimal() {
        let s = keys(&[1, 2, 2, 3]);
        let inputs = vec![s.clone(), s.clone(), s.clone()];
        for metric in AggMetric::ALL {
            let (opt, c) = optimal_partial_ranking(&inputs, metric).unwrap();
            assert_eq!(c, 0);
            assert_eq!(opt, s);
        }
    }

    #[test]
    fn optimal_of_type_restricts_shape() {
        let inputs = vec![keys(&[1, 2, 3, 4]), keys(&[1, 3, 2, 4]), keys(&[2, 1, 3, 4])];
        let alpha = TypeSeq::top_k(4, 1).unwrap();
        let (opt, c) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
        assert_eq!(opt.type_seq(), alpha);
        // Element 0 has median rank 1: the optimal top-1 puts it first.
        assert_eq!(opt.buckets()[0], vec![0]);
        // Unconstrained optimum can only be cheaper.
        let (_, c_free) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
        assert!(c_free <= c);
    }

    #[test]
    fn kemeny_matches_enumeration_on_full_inputs() {
        let inputs = vec![
            BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap(),
            BucketOrder::from_permutation(&[1, 0, 3, 2]).unwrap(),
            BucketOrder::from_permutation(&[0, 2, 1, 3]).unwrap(),
        ];
        let (hk, c_hk) = kemeny_optimal_full(&inputs).unwrap();
        // Enumerate all full rankings via optimal_of_type with full type.
        let (en, c_en) =
            optimal_of_type(&inputs, &TypeSeq::full(4), AggMetric::KProf).unwrap();
        assert_eq!(c_hk, c_en);
        assert_eq!(
            total_cost_x2(AggMetric::KProf, &hk, &inputs).unwrap(),
            total_cost_x2(AggMetric::KProf, &en, &inputs).unwrap()
        );
        assert_eq!(total_cost_x2(AggMetric::KProf, &hk, &inputs).unwrap(), c_hk);
    }

    #[test]
    fn kemeny_handles_tied_inputs() {
        let inputs = vec![
            keys(&[1, 1, 2]),
            keys(&[2, 1, 1]),
            keys(&[1, 2, 1]),
        ];
        let (hk, c_hk) = kemeny_optimal_full(&inputs).unwrap();
        assert!(hk.is_full());
        let (_, c_en) = optimal_of_type(&inputs, &TypeSeq::full(3), AggMetric::KProf).unwrap();
        assert_eq!(c_hk, c_en);
    }

    #[test]
    fn footrule_matching_matches_enumeration() {
        let inputs = vec![keys(&[3, 1, 2, 4]), keys(&[1, 2, 3, 4]), keys(&[2, 3, 1, 4])];
        let (fm, c_fm) = footrule_optimal_full(&inputs).unwrap();
        assert!(fm.is_full());
        let (_, c_en) = optimal_of_type(&inputs, &TypeSeq::full(4), AggMetric::FProf).unwrap();
        assert_eq!(c_fm, c_en);
        assert_eq!(
            total_cost_x2(AggMetric::FProf, &fm, &inputs).unwrap(),
            c_fm
        );
    }

    #[test]
    fn theorem11_median_within_factor_two_of_footrule_optimum() {
        // Full-ranking inputs: median-full is a 2-approximation.
        let inputs = vec![
            BucketOrder::from_permutation(&[4, 0, 1, 2, 3]).unwrap(),
            BucketOrder::from_permutation(&[0, 1, 4, 3, 2]).unwrap(),
            BucketOrder::from_permutation(&[1, 0, 2, 4, 3]).unwrap(),
        ];
        let med = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
        let med_cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
        let (_, opt_cost) = footrule_optimal_full(&inputs).unwrap();
        assert!(med_cost <= 2 * opt_cost, "{med_cost} > 2·{opt_cost}");
    }

    #[test]
    fn too_large_domains_are_rejected() {
        let big = BucketOrder::trivial(MAX_EXACT_N + 1);
        assert!(matches!(
            optimal_partial_ranking(std::slice::from_ref(&big), AggMetric::FProf),
            Err(AggregateError::DomainTooLarge { .. })
        ));
        let huge = BucketOrder::trivial(MAX_KEMENY_N + 1);
        assert!(matches!(
            kemeny_optimal_full(std::slice::from_ref(&huge)),
            Err(AggregateError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(optimal_partial_ranking(&[], AggMetric::FProf).is_err());
        assert!(kemeny_optimal_full(&[]).is_err());
        assert!(footrule_optimal_full(&[]).is_err());
        assert!(footrule_optimal_of_type(&[], &TypeSeq::full(0)).is_err());
    }

    #[test]
    fn typed_matching_matches_enumeration_exhaustively() {
        // For every type of n = 5, the Hungarian slot matching equals the
        // brute-force optimum over all orders of that type.
        let inputs = vec![
            keys(&[2, 1, 3, 1, 2]),
            keys(&[1, 3, 2, 2, 1]),
            keys(&[3, 2, 1, 3, 1]),
        ];
        for alpha in TypeSeq::all_types(5) {
            let (m_order, m_cost) = footrule_optimal_of_type(&inputs, &alpha).unwrap();
            assert_eq!(m_order.type_seq(), alpha);
            assert_eq!(
                total_cost_x2(AggMetric::FProf, &m_order, &inputs).unwrap(),
                m_cost
            );
            let (_, e_cost) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            assert_eq!(m_cost, e_cost, "type {alpha}");
        }
    }

    #[test]
    fn typed_matching_full_type_equals_full_matching() {
        let inputs = vec![keys(&[1, 2, 3, 4]), keys(&[4, 3, 2, 1]), keys(&[2, 2, 1, 1])];
        let (_, via_typed) = footrule_optimal_of_type(&inputs, &TypeSeq::full(4)).unwrap();
        let (_, via_full) = footrule_optimal_full(&inputs).unwrap();
        assert_eq!(via_typed, via_full);
    }

    #[test]
    fn typed_matching_scales_past_enumeration() {
        // n = 40 would need fubini(40) enumeration; the matching runs fine
        // and the median top-k respects its factor-3 bound against it.
        use crate::median::aggregate_top_k;
        let mut keysets = Vec::new();
        let mut x = 7u64;
        for _ in 0..5 {
            let ks: Vec<i64> = (0..40)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 6) as i64
                })
                .collect();
            keysets.push(BucketOrder::from_keys(&ks));
        }
        let alpha = TypeSeq::top_k(40, 10).unwrap();
        let (opt_order, opt) = footrule_optimal_of_type(&keysets, &alpha).unwrap();
        assert_eq!(opt_order.type_seq(), alpha);
        let med = aggregate_top_k(&keysets, 10, MedianPolicy::Lower).unwrap();
        let med_cost = total_cost_x2(AggMetric::FProf, &med, &keysets).unwrap();
        assert!(med_cost <= 3 * opt, "{med_cost} > 3·{opt}");
        assert!(opt <= med_cost);
    }

    #[test]
    fn lower_bound_is_sound_and_often_tight() {
        use crate::median::MedianPolicy;
        let mut state = 99u64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        let mut tight = 0;
        for _ in 0..30 {
            let n = (next(4) + 3) as usize;
            let inputs: Vec<BucketOrder> = (0..5)
                .map(|_| {
                    let ks: Vec<i64> = (0..n).map(|_| next(3) as i64).collect();
                    keys(&ks)
                })
                .collect();
            let lb = kprof_lower_bound_x2(&inputs).unwrap();
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::KProf).unwrap();
            assert!(lb <= opt, "lower bound {lb} exceeds optimum {opt}");
            if lb == opt {
                tight += 1;
            }
            // Also below every heuristic output, trivially.
            let med = crate::median::aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
            assert!(lb <= total_cost_x2(AggMetric::KProf, &med, &inputs).unwrap());
        }
        // Tightness requires a transitive per-pair optimum, which random
        // tie-heavy profiles often lack — a handful of exact matches over
        // 30 trials is the expected regime.
        assert!(tight >= 3, "bound should sometimes be tight: {tight}/30");
    }

    #[test]
    fn lower_bound_zero_for_unanimity() {
        let s = keys(&[1, 1, 2, 3]);
        let inputs = vec![s.clone(), s.clone()];
        assert_eq!(kprof_lower_bound_x2(&inputs).unwrap(), 0);
        assert!(kprof_lower_bound_x2(&[]).is_err());
    }

    #[test]
    fn typed_matching_type_mismatch_rejected() {
        let inputs = vec![keys(&[1, 2, 3])];
        let alpha = TypeSeq::full(4);
        assert!(matches!(
            footrule_optimal_of_type(&inputs, &alpha),
            Err(AggregateError::TypeSizeMismatch { .. })
        ));
    }
}
