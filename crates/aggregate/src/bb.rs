//! Branch-and-bound exact Kemeny aggregation.
//!
//! [`crate::exact::kemeny_optimal_full`] (Held–Karp) is exact but pays
//! `O(2ⁿ)` memory, capping out around `n = 18`. This module searches the
//! space of prefixes depth-first with the pairwise lower bound of
//! [`crate::exact::kprof_lower_bound_x2`] (restricted to full-ranking
//! outputs) for pruning, warm-started by KwikSort + local Kemenization.
//! On cohesive profiles (the realistic regime) it solves `n = 25+`
//! instances in milliseconds; on adversarial profiles it degrades toward
//! exponential like any exact Kemeny solver (the problem is NP-hard).

use crate::cost::{total_cost_x2, AggMetric};
use crate::error::check_inputs;
use crate::kwiksort::kwiksort_best_of;
use crate::local::local_kemenize;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// Hard cap on the domain size accepted (beyond this even well-pruned
/// searches can blow up).
pub const MAX_BB_N: usize = 40;

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbStats {
    /// Search nodes expanded.
    pub nodes: u64,
    /// Nodes pruned by the lower bound.
    pub pruned: u64,
}

/// Exact Kemeny (optimal **full ranking** under the `Kprof` objective)
/// by branch and bound. Returns `(optimum, cost_x2, stats)`.
///
/// # Errors
/// [`AggregateError::DomainTooLarge`] beyond [`MAX_BB_N`];
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn kemeny_optimal_bb(
    inputs: &[BucketOrder],
) -> Result<(BucketOrder, u64, BbStats), AggregateError> {
    let n = check_inputs(inputs)?;
    if n > MAX_BB_N {
        return Err(AggregateError::DomainTooLarge { n, max: MAX_BB_N });
    }
    if n == 0 {
        return Ok((
            BucketOrder::trivial(0),
            0,
            BbStats {
                nodes: 0,
                pruned: 0,
            },
        ));
    }
    // c[a][b] = cost ×2 of ranking a strictly ahead of b.
    let mut c = vec![0u64; n * n];
    for s in inputs {
        for a in 0..n as ElementId {
            for b in 0..n as ElementId {
                if a == b {
                    continue;
                }
                let cell = &mut c[a as usize * n + b as usize];
                if s.prefers(b, a) {
                    *cell += 2;
                } else if s.is_tied(a, b) {
                    *cell += 1;
                }
            }
        }
    }

    // Warm start: best of KwikSort restarts, locally Kemenized.
    let warm = local_kemenize(&kwiksort_best_of(inputs, 0xBB, 8)?, inputs)?;
    let mut best_perm = warm.as_permutation().expect("local_kemenize emits full");
    let mut best_cost = total_cost_x2(AggMetric::KProf, &warm, inputs)?;

    // Pairwise LB over the full remaining set.
    let pair_lb = |a: usize, b: usize| c[a * n + b].min(c[b * n + a]);
    let mut lb_all = 0u64;
    for a in 0..n {
        for b in a + 1..n {
            lb_all += pair_lb(a, b);
        }
    }

    let mut stats = BbStats {
        nodes: 0,
        pruned: 0,
    };
    let mut prefix: Vec<ElementId> = Vec::with_capacity(n);
    let mut in_prefix = vec![false; n];
    dfs(
        &mut prefix,
        &mut in_prefix,
        0,
        lb_all,
        &c,
        n,
        &mut best_perm,
        &mut best_cost,
        &mut stats,
    );

    let order = BucketOrder::from_permutation(&best_perm).expect("permutation preserved");
    Ok((order, best_cost, stats))
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    prefix: &mut Vec<ElementId>,
    in_prefix: &mut [bool],
    cost_so_far: u64,
    lb_remaining: u64,
    c: &[u64],
    n: usize,
    best_perm: &mut Vec<ElementId>,
    best_cost: &mut u64,
    stats: &mut BbStats,
) {
    stats.nodes += 1;
    if prefix.len() == n {
        if cost_so_far < *best_cost {
            *best_cost = cost_so_far;
            *best_perm = prefix.clone();
        }
        return;
    }
    // Candidate next elements, cheapest increment first (good orderings
    // found early tighten the bound for the rest).
    let mut candidates: Vec<(u64, ElementId)> = Vec::new();
    for e in 0..n {
        if in_prefix[e] {
            continue;
        }
        // Placing e now fixes pairs (e, u) for unplaced u ≠ e.
        let mut inc = 0u64;
        let mut lb_drop = 0u64;
        for u in 0..n {
            if u == e || in_prefix[u] {
                continue;
            }
            inc += c[e * n + u];
            lb_drop += c[e * n + u].min(c[u * n + e]);
        }
        // Prune: optimistic completion cost.
        let optimistic = cost_so_far + inc + (lb_remaining - lb_drop);
        if optimistic >= *best_cost {
            stats.pruned += 1;
            continue;
        }
        candidates.push((inc, e as ElementId));
        // Stash lb_drop via recomputation later; cheap enough at O(n).
    }
    candidates.sort_unstable();
    for (inc, e) in candidates {
        // Recheck the bound (best_cost may have improved).
        let mut lb_drop = 0u64;
        for u in 0..n {
            if u == e as usize || in_prefix[u] {
                continue;
            }
            lb_drop += c[e as usize * n + u].min(c[u * n + e as usize]);
        }
        if cost_so_far + inc + (lb_remaining - lb_drop) >= *best_cost {
            stats.pruned += 1;
            continue;
        }
        prefix.push(e);
        in_prefix[e as usize] = true;
        dfs(
            prefix,
            in_prefix,
            cost_so_far + inc,
            lb_remaining - lb_drop,
            c,
            n,
            best_perm,
            best_cost,
            stats,
        );
        in_prefix[e as usize] = false;
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::kemeny_optimal_full;
    use bucketrank_core::BucketOrder;

    fn lcg_profile(seed: u64, n: usize, m: usize, levels: u64) -> Vec<BucketOrder> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = move |md: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % md
        };
        (0..m)
            .map(|_| {
                let ks: Vec<i64> = (0..n).map(|_| next(levels) as i64).collect();
                BucketOrder::from_keys(&ks)
            })
            .collect()
    }

    #[test]
    fn matches_held_karp_on_random_profiles() {
        for seed in 0..15u64 {
            let n = 4 + (seed % 6) as usize; // 4..=9
            let inputs = lcg_profile(seed, n, 5, 4);
            let (_, hk_cost) = kemeny_optimal_full(&inputs).unwrap();
            let (order, bb_cost, _) = kemeny_optimal_bb(&inputs).unwrap();
            assert_eq!(bb_cost, hk_cost, "seed {seed}");
            assert_eq!(
                total_cost_x2(AggMetric::KProf, &order, &inputs).unwrap(),
                bb_cost
            );
        }
    }

    #[test]
    fn scales_past_held_karp_on_cohesive_profiles() {
        // n = 24 with strongly correlated voters: pruning keeps this tiny.
        let reference: Vec<u32> = (0..24).collect();
        let mut inputs = Vec::new();
        for shift in 0..5usize {
            let mut perm = reference.clone();
            // A couple of local swaps per voter.
            perm.swap(shift, shift + 1);
            perm.swap(shift + 10, shift + 11);
            inputs.push(BucketOrder::from_permutation(&perm).unwrap());
        }
        let (order, cost, stats) = kemeny_optimal_bb(&inputs).unwrap();
        assert!(order.is_full());
        // Sanity: the reference itself is a candidate; optimum can't cost
        // more than the reference's cost.
        let ref_cost = total_cost_x2(
            AggMetric::KProf,
            &BucketOrder::from_permutation(&reference).unwrap(),
            &inputs,
        )
        .unwrap();
        assert!(cost <= ref_cost);
        assert!(stats.nodes < 2_000_000, "nodes = {}", stats.nodes);
    }

    #[test]
    fn warm_start_already_optimal_terminates_fast() {
        let s = BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap();
        let inputs = vec![s.clone(); 4];
        let (order, cost, _) = kemeny_optimal_bb(&inputs).unwrap();
        assert_eq!(order, s);
        assert_eq!(cost, 0);
    }

    #[test]
    fn errors() {
        assert!(kemeny_optimal_bb(&[]).is_err());
        let huge = BucketOrder::trivial(MAX_BB_N + 1);
        assert!(matches!(
            kemeny_optimal_bb(std::slice::from_ref(&huge)),
            Err(AggregateError::DomainTooLarge { .. })
        ));
        let empty = BucketOrder::trivial(0);
        let (o, c, _) = kemeny_optimal_bb(std::slice::from_ref(&empty)).unwrap();
        assert!(o.is_empty());
        assert_eq!(c, 0);
    }
}
