//! The Schulze method (beatpath winner), a classical Condorcet-consistent
//! aggregation baseline.
//!
//! For each ordered pair `(a, b)` let `w(a, b)` be the number of inputs
//! strictly preferring `a` (ties count for neither). The *beatpath
//! strength* `p(a, b)` is the widest-path value from `a` to `b` in the
//! digraph whose edge `a → b` exists when `w(a, b) > w(b, a)` with width
//! `w(a, b)`; `a` finishes ahead of `b` when `p(a, b) > p(b, a)`. That
//! relation is a strict partial order; peeling off its undominated
//! layers yields a bucket order — ties land in shared buckets, a pleasant
//! fit for this library.
//!
//! Complements [`crate::condorcet`]: Schulze always ranks a Condorcet
//! winner first and respects the Smith set.

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// Runs the Schulze method; the output's buckets are the *undominated
/// layers* of the beatpath order (repeatedly extract everything no
/// remaining element beats), a canonical linear extension with ties.
///
/// Builds the shared [`ProfileTally`] internally; callers that already
/// hold one should use [`schulze_with_tally`].
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn schulze(inputs: &[BucketOrder]) -> Result<BucketOrder, AggregateError> {
    check_inputs(inputs)?;
    schulze_with_tally(&ProfileTally::build(inputs)?)
}

/// [`schulze`] over a prebuilt pairwise tally: the support counts
/// `w(a, b)` are the tally's strict-preference counts, so only the
/// `O(n³)` widest-path computation remains.
///
/// # Errors
/// Infallible in practice; `Result` kept for signature symmetry with
/// [`schulze`].
pub fn schulze_with_tally(tally: &ProfileTally) -> Result<BucketOrder, AggregateError> {
    let n = tally.len();
    if n == 0 {
        return Ok(BucketOrder::trivial(0));
    }
    // Pairwise support, read straight off the shared tally.
    let strict = tally.strict_counts();
    let w: Vec<u64> = strict.iter().map(|&c| u64::from(c)).collect();
    // Widest paths (Floyd–Warshall on max-min).
    let mut p = vec![0u64; n * n];
    for a in 0..n {
        for b in 0..n {
            if a != b && w[a * n + b] > w[b * n + a] {
                p[a * n + b] = w[a * n + b];
            }
        }
    }
    for k in 0..n {
        for a in 0..n {
            if a == k {
                continue;
            }
            let pak = p[a * n + k];
            if pak == 0 {
                continue;
            }
            for b in 0..n {
                if b == a || b == k {
                    continue;
                }
                let via = pak.min(p[k * n + b]);
                if via > p[a * n + b] {
                    p[a * n + b] = via;
                }
            }
        }
    }
    // a beats b ⟺ p(a,b) > p(b,a) — a strict partial order; peel off
    // undominated layers to get the output buckets.
    let beats = |a: usize, b: usize| p[a * n + b] > p[b * n + a];
    let mut remaining: Vec<ElementId> = (0..n as ElementId).collect();
    let mut buckets: Vec<Vec<ElementId>> = Vec::new();
    while !remaining.is_empty() {
        // Undominated within the remaining set.
        let layer: Vec<ElementId> = remaining
            .iter()
            .copied()
            .filter(|&a| {
                !remaining
                    .iter()
                    .any(|&b| b != a && beats(b as usize, a as usize))
            })
            .collect();
        debug_assert!(
            !layer.is_empty(),
            "strict partial orders always have maximal elements"
        );
        remaining.retain(|e| !layer.contains(e));
        buckets.push(layer);
    }
    Ok(BucketOrder::from_buckets(n, buckets)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condorcet::MajorityGraph;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn unanimous_recovered() {
        let s = BucketOrder::from_permutation(&[2, 0, 1]).unwrap();
        let out = schulze(&vec![s.clone(); 3]).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn condorcet_winner_first() {
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[1, 3, 4, 2]),
            keys(&[2, 1, 4, 3]),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        let w = g.condorcet_winner().unwrap();
        let out = schulze(&inputs).unwrap();
        assert_eq!(out.bucket_index(w), 0);
        assert_eq!(out.buckets()[0], vec![w]);
    }

    #[test]
    fn pure_cycle_collapses_to_one_bucket() {
        let inputs = vec![
            BucketOrder::from_permutation(&[0, 1, 2]).unwrap(),
            BucketOrder::from_permutation(&[1, 2, 0]).unwrap(),
            BucketOrder::from_permutation(&[2, 0, 1]).unwrap(),
        ];
        let out = schulze(&inputs).unwrap();
        // Perfect symmetry: beatpaths tie everywhere.
        assert_eq!(out, BucketOrder::trivial(3));
    }

    #[test]
    fn smith_set_respected() {
        use crate::condorcet::respects_smith_set;
        let inputs = vec![
            BucketOrder::from_permutation(&[0, 1, 2, 3, 4]).unwrap(),
            BucketOrder::from_permutation(&[1, 2, 0, 4, 3]).unwrap(),
            BucketOrder::from_permutation(&[2, 0, 1, 3, 4]).unwrap(),
        ];
        let g = MajorityGraph::build(&inputs).unwrap();
        let out = schulze(&inputs).unwrap();
        // Refine ties arbitrarily for the check's strict-preference needs.
        assert!(respects_smith_set(&g, &out.arbitrary_full_refinement()).unwrap());
    }

    #[test]
    fn tied_inputs_handled() {
        let inputs = vec![BucketOrder::trivial(4), keys(&[1, 2, 3, 4])];
        let out = schulze(&inputs).unwrap();
        // The only information is the second voter's order.
        assert_eq!(out, keys(&[1, 2, 3, 4]));
    }

    #[test]
    fn errors_and_empty() {
        assert!(schulze(&[]).is_err());
        assert_eq!(
            schulze(&[BucketOrder::trivial(0)]).unwrap(),
            BucketOrder::trivial(0)
        );
    }
}
