//! The shared pairwise-preference tally of a profile — the substrate
//! every Kemeny-style aggregator in this crate consumes.
//!
//! Kemeny aggregation, the majority digraph, Schulze, MC4 and local
//! Kemenization are all functions of the same `O(n²)` statistic: for
//! each ordered pair `(a, b)`, how many voters strictly prefer `a` and
//! how many tie the pair. Before this module each consumer rebuilt that
//! statistic privately with per-pair `prefers()` loops — `O(m·n²)`
//! method calls apiece, repeated per algorithm. [`ProfileTally`] builds
//! it **once** per profile and hands every consumer `O(1)` reads:
//!
//! * [`kwiksort`](crate::kwiksort::kwiksort_with_tally) pivots on the
//!   ×2 weights;
//! * [`MajorityGraph`](crate::condorcet::MajorityGraph::from_tally)
//!   reads majority margins;
//! * [`schulze`](crate::schulze::schulze_with_tally) reads strict
//!   support counts;
//! * MC4 ([`crate::markov`]) reads strict-majority bits;
//! * [`local_kemenize`](crate::local::local_kemenize_with_tally) reads
//!   adjacent-swap deltas;
//! * [`kemeny_cost_x2`](ProfileTally::kemeny_cost_x2) evaluates the
//!   total `Kprof` objective of any candidate in `O(n²)` —
//!   **independent of the number of voters** — where the direct path
//!   pays `O(m·n log n)` per candidate.
//!
//! # Scaling convention
//!
//! The weight matrix is ×2-scaled so ties stay exact in integers:
//! `weight_x2(a, b) = 2·#{voters strictly preferring a over b} +
//! #{voters tying the pair}`. For every pair,
//! `weight_x2(a, b) + weight_x2(b, a) = 2m`. Placing `a` strictly ahead
//! of `b` in a candidate costs `weight_x2(b, a)` on the `Kprof` ×2
//! scale (2 per voter preferring `b`, 1 per tying voter — the `p = ½`
//! penalty of Section 3.1).
//!
//! # Build
//!
//! The build streams voters through a tiled, branchless comparison
//! kernel. A voter's contiguous bucket-index map `bof` (element →
//! bucket index, [`BucketOrder::bucket_indices`]) turns every strict
//! preference into a comparison — the voter strictly prefers `a` over
//! `b` exactly when `bof[b] > bof[a]` — so each matrix row is one
//! `zip` pass of compare-and-add over two slices: sequential reads,
//! sequential writes, no data-dependent branches, no bounds checks,
//! and the compiler autovectorizes the inner loop.
//!
//! Voters are split into chunks of at most [`CHUNK_VOTERS`] and each
//! chunk accumulates into a `u16` partial matrix — half the write
//! bandwidth of the final `u32` cells on the dominant pass, and safe
//! from overflow by the chunk bound (see [`CHUNK_VOTERS`]). Rows are
//! blocked into [`TILE_ROWS`]-row slabs with the voter loop *inside*
//! the tile loop, so the slab being written stays cache-resident
//! while a whole chunk streams past. The last partial is widened to
//! `u32` and the ×2 weight matrix derived in one fused sweep over the
//! pair triangles — the `w2` derivation costs no extra pass.
//!
//! The parallel path ([`ProfileTally::build_parallel`]) splits voters
//! across scoped threads (clamped to the machine's available
//! parallelism), each running the same chunked kernel into a private
//! partial, then merges. DESIGN.md §3.3b documents the
//! microarchitecture; `tests/tally_conformance.rs` proves the tiled,
//! narrow-cell build bit-identical to the naive `prefers()` reference,
//! including chunk-promotion boundaries.

use crate::error::check_inputs;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// Rows per accumulation tile: the write slab kept cache-hot while a
/// chunk's voters stream past it. `TILE_ROWS × n` `u16` cells is 16 KB
/// at `n = 512` — L1-resident alongside one voter's 4·n-byte
/// bucket-index row on any contemporary core, and still comfortably
/// L2-resident for domains an order of magnitude wider.
pub const TILE_ROWS: usize = 16;

/// Most voters accumulated into one `u16` chunk partial.
///
/// **Overflow proof for the narrow cells:** a voter increments
/// `partial[a·n + b]` at most once (the kernel adds
/// `(bof[b] > bof[a]) as u16`, which is 0 or 1, exactly once per
/// `(a, b)` per voter), so after a chunk of `c ≤ CHUNK_VOTERS =
/// u16::MAX` voters every cell is at most `c ≤ u16::MAX`. Partials are
/// promoted to the `u32` accumulator once per chunk, never read back,
/// so no wider value ever lands in a `u16` cell.
pub const CHUNK_VOTERS: usize = u16::MAX as usize;

/// The pairwise-preference tally of a profile; see the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileTally {
    n: usize,
    m: usize,
    /// `strict[a·n + b]` = number of voters strictly preferring `a`
    /// over `b`.
    strict: Vec<u32>,
    /// `w2[a·n + b]` = `2·strict(a, b) + ties(a, b)` — the ×2-scaled
    /// pairwise weight. Derived: `w2(a, b) = m + strict(a, b) −
    /// strict(b, a)`.
    w2: Vec<u32>,
}

/// Accumulates one chunk of voters into a `u16` strict-count partial.
///
/// Branchless comparison kernel: `strict(a, b)` gains one exactly when
/// the voter puts `b` in a strictly later bucket than `a`, so row `a`
/// is a single zip of the row slab against the voter's contiguous
/// bucket-index map — the compare-and-add has no data-dependent
/// control flow and the `zip` elides every bounds check, so it
/// autovectorizes. The diagonal needs no special case: `bof[a] >
/// bof[a]` is false, so the cell stays zero.
///
/// Tiling: `a`-rows are blocked in [`TILE_ROWS`]-row slabs and the
/// voter loop runs *inside* the tile loop, so one `TILE_ROWS × n`
/// `u16` slab absorbs every voter's writes while cache-hot; cold write
/// traffic per chunk is one matrix, not one matrix per voter.
///
/// Overflow: `chunk.len() ≤ CHUNK_VOTERS` and each voter adds at most
/// one per cell — see the proof on [`CHUNK_VOTERS`].
fn accumulate_chunk(partial: &mut [u16], n: usize, chunk: &[BucketOrder]) {
    debug_assert!(chunk.len() <= CHUNK_VOTERS);
    let mut row0 = 0usize;
    while row0 < n {
        let row1 = (row0 + TILE_ROWS).min(n);
        for voter in chunk {
            let bof = voter.bucket_indices();
            for a in row0..row1 {
                let ba = bof[a];
                let row = &mut partial[a * n..(a + 1) * n];
                for (cell, &bb) in row.iter_mut().zip(bof) {
                    *cell += u16::from(bb > ba);
                }
            }
        }
        row0 = row1;
    }
}

/// Widens one `u16` chunk partial into the `u32` accumulator — the
/// promotion path: narrow cells exist only within a chunk and are
/// summed here exactly, so chunked accumulation is bit-identical to a
/// single wide pass.
fn widen_into(acc: &mut [u32], partial: &[u16]) {
    for (cell, &p) in acc.iter_mut().zip(partial) {
        *cell += u32::from(p);
    }
}

/// Folds the final partial into `strict` and derives the ×2 weights in
/// the same sweep: each unordered pair's two strict cells are
/// finalized together and both `w2` triangles written from them
/// (`w2(a, b) = m + s(a, b) − s(b, a)`), so the `O(n²)` `w2`
/// derivation is fused into the merge instead of costing a separate
/// pass over both matrices. Generic over the partial's cell width: the
/// sequential path feeds the last `u16` chunk, the parallel path the
/// last worker's `u32` partial.
fn merge_last_and_derive<C: Copy + Into<u32>>(
    strict: &mut [u32],
    w2: &mut [u32],
    last: &[C],
    n: usize,
    m: usize,
) {
    debug_assert_eq!(last.len(), n * n);
    let m32 = m as u32;
    for a in 0..n {
        for b in a + 1..n {
            let ab = a * n + b;
            let ba = b * n + a;
            let sab = strict[ab] + last[ab].into();
            let sba = strict[ba] + last[ba].into();
            strict[ab] = sab;
            strict[ba] = sba;
            w2[ab] = m32 + sab - sba;
            w2[ba] = m32 + sba - sab;
        }
    }
}

/// The sequential build pass: chunk the voters, accumulate each chunk
/// in a reused `u16` partial, promote every chunk but the last into
/// `strict`, and fold the last chunk into the fused `w2` sweep.
fn accumulate_seq(
    strict: &mut [u32],
    w2: &mut [u32],
    n: usize,
    inputs: &[BucketOrder],
    chunk_voters: usize,
) {
    let m = inputs.len();
    let nchunks = m.div_ceil(chunk_voters);
    let mut partial = vec![0u16; n * n];
    for (i, chunk) in inputs.chunks(chunk_voters).enumerate() {
        if i > 0 {
            partial.fill(0);
        }
        accumulate_chunk(&mut partial, n, chunk);
        if i + 1 < nchunks {
            widen_into(strict, &partial);
        }
    }
    merge_last_and_derive(strict, w2, &partial, n, m);
}

impl ProfileTally {
    /// Builds the tally sequentially: one pass per voter.
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] /
    /// [`AggregateError::DomainMismatch`].
    ///
    /// # Panics
    /// Panics if the profile has more than `u32::MAX / 2` voters (the
    /// ×2-scaled weights would overflow the `u32` cells).
    pub fn build(inputs: &[BucketOrder]) -> Result<Self, AggregateError> {
        Self::build_parallel(inputs, 1)
    }

    /// Builds the tally with up to `threads` scoped worker threads:
    /// voters are split into contiguous chunks, each thread runs the
    /// chunked `u16` kernel into a private partial, and the partials
    /// are merged (the last one fused with the `w2` derivation).
    /// `threads ≤ 1` (or a small profile) falls back to the sequential
    /// pass.
    ///
    /// `threads` is clamped to
    /// [`std::thread::available_parallelism`] before chunking — asking
    /// for more workers than the machine has cores used to *slow the
    /// build down* (the oversubscribed partials thrash one core and the
    /// merge pays for every extra matrix). Benchmarks that need
    /// fixed-width scaling rows regardless of the host use
    /// [`ProfileTally::build_parallel_unclamped`].
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] /
    /// [`AggregateError::DomainMismatch`].
    ///
    /// # Panics
    /// As [`ProfileTally::build`].
    pub fn build_parallel(inputs: &[BucketOrder], threads: usize) -> Result<Self, AggregateError> {
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::build_parallel_unclamped(inputs, threads.min(avail))
    }

    /// [`ProfileTally::build_parallel`] without the
    /// available-parallelism clamp: spawns exactly `min(threads, m)`
    /// workers even on a narrower machine. This exists for benchmarks
    /// that measure fixed thread-width scaling rows; library callers
    /// want the clamped entry point.
    ///
    /// # Errors
    /// # Panics
    /// As [`ProfileTally::build_parallel`].
    pub fn build_parallel_unclamped(
        inputs: &[BucketOrder],
        threads: usize,
    ) -> Result<Self, AggregateError> {
        let n = check_inputs(inputs)?;
        let m = inputs.len();
        assert!(
            m <= (u32::MAX / 2) as usize,
            "profile too large for u32 tally cells ({m} voters)"
        );
        let mut strict = vec![0u32; n * n];
        let mut w2 = vec![0u32; n * n];
        let threads = threads.clamp(1, m);
        if threads <= 1 || m < 4 {
            accumulate_seq(&mut strict, &mut w2, n, inputs, CHUNK_VOTERS);
        } else {
            let per = m.div_ceil(threads);
            let mut partials: Vec<Vec<u32>> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = inputs
                    .chunks(per)
                    .map(|voters| {
                        scope.spawn(move || {
                            let mut acc = vec![0u32; n * n];
                            let mut partial = vec![0u16; n * n];
                            for chunk in voters.chunks(CHUNK_VOTERS) {
                                partial.fill(0);
                                accumulate_chunk(&mut partial, n, chunk);
                                widen_into(&mut acc, &partial);
                            }
                            acc
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("tally worker panicked"));
                }
            });
            // Sum all but the last worker's partial into `strict`, then
            // fold the last one into the fused w2-derivation sweep.
            let last = partials.pop().expect("at least one tally worker");
            for partial in &partials {
                for (cell, &add) in strict.iter_mut().zip(partial) {
                    *cell += add;
                }
            }
            merge_last_and_derive(&mut strict, &mut w2, &last, n, m);
        }
        Ok(ProfileTally { n, m, strict, w2 })
    }

    /// Sequential build with an explicit voter-chunk size — the
    /// conformance hook behind the chunk-boundary differential lane in
    /// `tests/tally_conformance.rs` (any `chunk_voters` must reproduce
    /// [`ProfileTally::build`] bit-for-bit). `chunk_voters` is clamped
    /// to `1..=CHUNK_VOTERS`; library callers want
    /// [`ProfileTally::build`].
    ///
    /// # Errors
    /// # Panics
    /// As [`ProfileTally::build`].
    pub fn build_with_chunk(
        inputs: &[BucketOrder],
        chunk_voters: usize,
    ) -> Result<Self, AggregateError> {
        let n = check_inputs(inputs)?;
        let m = inputs.len();
        assert!(
            m <= (u32::MAX / 2) as usize,
            "profile too large for u32 tally cells ({m} voters)"
        );
        let mut strict = vec![0u32; n * n];
        let mut w2 = vec![0u32; n * n];
        accumulate_seq(
            &mut strict,
            &mut w2,
            n,
            inputs,
            chunk_voters.clamp(1, CHUNK_VOTERS),
        );
        Ok(ProfileTally { n, m, strict, w2 })
    }

    /// Assembles a tally from already-consistent matrices — the hook the
    /// dynamic engine ([`crate::dynamic`]) uses to start from an empty
    /// profile and to clone snapshots. Callers must uphold the build
    /// invariants: both matrices are `n × n` row-major,
    /// `w2(a, b) = m + strict(a, b) − strict(b, a)` off the diagonal,
    /// and both diagonals are zero.
    pub(crate) fn from_parts(n: usize, m: usize, strict: Vec<u32>, w2: Vec<u32>) -> Self {
        debug_assert_eq!(strict.len(), n * n);
        debug_assert_eq!(w2.len(), n * n);
        ProfileTally { n, m, strict, w2 }
    }

    /// Mutable access to `(strict, w2)` for in-place incremental
    /// maintenance by [`crate::dynamic`]; the caller must restore the
    /// build invariants before any query runs.
    pub(crate) fn parts_mut(&mut self) -> (&mut [u32], &mut [u32]) {
        (&mut self.strict, &mut self.w2)
    }

    /// Sets the voter count after an incremental edit ([`crate::dynamic`]).
    pub(crate) fn set_voters(&mut self, m: usize) {
        self.m = m;
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of voters tallied.
    pub fn voters(&self) -> usize {
        self.m
    }

    /// The ×2-scaled pairwise weight: `2·strict(a, b) + ties(a, b)`.
    pub fn weight_x2(&self, a: ElementId, b: ElementId) -> u32 {
        self.w2[a as usize * self.n + b as usize]
    }

    /// Number of voters strictly preferring `a` over `b`.
    pub fn strict_count(&self, a: ElementId, b: ElementId) -> u32 {
        self.strict[a as usize * self.n + b as usize]
    }

    /// Number of voters tying the pair (`a ≠ b`).
    pub fn tie_count(&self, a: ElementId, b: ElementId) -> u32 {
        self.m as u32
            - self.strict[a as usize * self.n + b as usize]
            - self.strict[b as usize * self.n + a as usize]
    }

    /// Signed majority margin `strict(a, b) − strict(b, a)`.
    ///
    /// A single load: `w2(a, b) = m + strict(a, b) − strict(b, a)`, so
    /// the margin is `w2(a, b) − m` without touching the transposed
    /// cell.
    pub fn margin(&self, a: ElementId, b: ElementId) -> i64 {
        i64::from(self.w2[a as usize * self.n + b as usize]) - self.m as i64
    }

    /// Whether strictly more voters prefer `a` over `b` than the
    /// reverse (the majority-digraph edge; tying voters count for
    /// neither side).
    pub fn majority_prefers(&self, a: ElementId, b: ElementId) -> bool {
        self.margin(a, b) > 0
    }

    /// Whether a strict majority of **all** voters prefers `a` over `b`
    /// (`strict(a, b) > m/2`) — the MC4 transition condition, which is
    /// stronger than [`ProfileTally::majority_prefers`] when voters tie
    /// the pair.
    pub fn strict_majority(&self, a: ElementId, b: ElementId) -> bool {
        2 * u64::from(self.strict_count(a, b)) > self.m as u64
    }

    /// [`ProfileTally::strict_majority`]`(a, b)` for every `a` at once,
    /// yielded in element order — the whole column of strict-majority
    /// tests against a fixed `b`, computed from **row** `b` alone via
    /// `strict(a, b) = m + strict(b, a) − w2(b, a)`. The naive column
    /// walk strides by `n` per element (a cache miss each on profile
    /// -scale matrices); this reads two sequential rows instead. The
    /// MC4 transition rows are built from it.
    ///
    /// The diagonal entry (`a == b`) is meaningless and yielded as
    /// `true` for any non-empty profile; callers skip it.
    pub fn strict_majorities_against(
        &self,
        b: ElementId,
    ) -> impl Iterator<Item = bool> + '_ {
        let row_s = &self.strict[b as usize * self.n..(b as usize + 1) * self.n];
        let row_w = &self.w2[b as usize * self.n..(b as usize + 1) * self.n];
        let m = self.m as i64;
        row_s
            .iter()
            .zip(row_w)
            .map(move |(&s_ba, &w_ba)| 2 * (m + i64::from(s_ba) - i64::from(w_ba)) > m)
    }

    /// The ×2 `Kprof` cost of placing `ahead` strictly ahead of
    /// `behind`: 2 per voter preferring `behind`, 1 per tying voter.
    pub fn pair_cost_x2(&self, ahead: ElementId, behind: ElementId) -> u32 {
        self.w2[behind as usize * self.n + ahead as usize]
    }

    /// The ×2 objective change from swapping an adjacent pair currently
    /// ordered `(ahead, behind)` to `(behind, ahead)`; negative means
    /// the swap improves the candidate.
    pub fn swap_delta_x2(&self, ahead: ElementId, behind: ElementId) -> i64 {
        i64::from(self.pair_cost_x2(behind, ahead)) - i64::from(self.pair_cost_x2(ahead, behind))
    }

    /// The flat ×2 weight matrix (`n × n`, row-major).
    pub fn weights_x2(&self) -> &[u32] {
        &self.w2
    }

    /// The flat strict-count matrix (`n × n`, row-major).
    pub fn strict_counts(&self) -> &[u32] {
        &self.strict
    }

    /// The total `Kprof` objective `2·Σ_i Kprof(candidate, σ_i)` of any
    /// candidate bucket order, in `O(n²)` — independent of the number
    /// of voters. Ties in the candidate are handled exactly: a pair the
    /// candidate ties costs 1 (×2 scale) per voter ordering it either
    /// way.
    ///
    /// Agrees exactly with summing
    /// [`kendall::kprof_x2`](bucketrank_metrics::kendall::kprof_x2)
    /// over the voters (enforced by `tests/tally_conformance.rs`).
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] if the candidate's domain
    /// size differs from the tally's.
    pub fn kemeny_cost_x2(&self, candidate: &BucketOrder) -> Result<u64, AggregateError> {
        let n = self.n;
        if candidate.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: candidate.len(),
            });
        }
        let buckets = candidate.bucket_indices();
        let mut total = 0u64;
        // Row-contiguous scans: the pair (winner w, loser l) costs
        // w2[l][w]; a candidate-tied pair (a, b) costs
        // strict(a, b) + strict(b, a), split across both rows.
        for l in 0..n {
            let bl = buckets[l];
            let row_w2 = &self.w2[l * n..(l + 1) * n];
            let row_s = &self.strict[l * n..(l + 1) * n];
            for w in 0..n {
                let bw = buckets[w];
                if bw < bl {
                    total += u64::from(row_w2[w]);
                } else if bw == bl && w != l {
                    total += u64::from(row_s[w]);
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_metrics::kendall;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    fn naive_weights(inputs: &[BucketOrder]) -> Vec<u32> {
        let n = inputs[0].len();
        let mut w2 = vec![0u32; n * n];
        for s in inputs {
            for a in 0..n as ElementId {
                for b in 0..n as ElementId {
                    if a == b {
                        continue;
                    }
                    let cell = &mut w2[a as usize * n + b as usize];
                    if s.prefers(a, b) {
                        *cell += 2;
                    } else if s.is_tied(a, b) {
                        *cell += 1;
                    }
                }
            }
        }
        w2
    }

    #[test]
    fn weights_match_naive_prefers_loop() {
        let inputs = vec![
            keys(&[1, 1, 2, 3, 2]),
            keys(&[3, 2, 1, 1, 1]),
            keys(&[2, 2, 2, 2, 2]),
            BucketOrder::from_permutation(&[4, 2, 0, 3, 1]).unwrap(),
        ];
        let t = ProfileTally::build(&inputs).unwrap();
        assert_eq!(t.weights_x2(), naive_weights(&inputs).as_slice());
        assert_eq!(t.voters(), 4);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn counts_and_queries_are_consistent() {
        let inputs = vec![keys(&[1, 2, 2]), keys(&[2, 1, 1]), keys(&[1, 1, 2])];
        let t = ProfileTally::build(&inputs).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    continue;
                }
                let strict = inputs.iter().filter(|s| s.prefers(a, b)).count() as u32;
                let ties = inputs.iter().filter(|s| s.is_tied(a, b)).count() as u32;
                assert_eq!(t.strict_count(a, b), strict);
                assert_eq!(t.tie_count(a, b), ties);
                assert_eq!(t.weight_x2(a, b), 2 * strict + ties);
                assert_eq!(t.weight_x2(a, b) + t.weight_x2(b, a), 2 * 3);
                assert_eq!(
                    t.majority_prefers(a, b),
                    t.strict_count(a, b) > t.strict_count(b, a)
                );
                assert_eq!(t.strict_majority(a, b), strict as usize * 2 > inputs.len());
                assert_eq!(
                    t.margin(a, b),
                    t.strict_count(a, b) as i64 - t.strict_count(b, a) as i64
                );
            }
        }
    }

    #[test]
    fn strict_majorities_against_matches_pointwise_query() {
        let inputs = vec![
            keys(&[1, 2, 2, 3]),
            keys(&[2, 1, 1, 1]),
            keys(&[3, 3, 1, 2]),
            keys(&[1, 1, 2, 2]),
        ];
        let t = ProfileTally::build(&inputs).unwrap();
        for b in 0..4 {
            let col: Vec<bool> = t.strict_majorities_against(b).collect();
            assert_eq!(col.len(), 4);
            for a in 0..4 {
                if a != b {
                    assert_eq!(col[a as usize], t.strict_majority(a, b), "({a},{b})");
                }
            }
        }
    }

    #[test]
    fn kemeny_cost_equals_kprof_sum() {
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[2, 1, 4, 3]),
            keys(&[1, 1, 2, 2]),
        ];
        let t = ProfileTally::build(&inputs).unwrap();
        for cand in [
            BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap(),
            keys(&[1, 2, 2, 1]),
            BucketOrder::trivial(4),
        ] {
            let direct: u64 = inputs
                .iter()
                .map(|s| kendall::kprof_x2(&cand, s).unwrap())
                .sum();
            assert_eq!(t.kemeny_cost_x2(&cand).unwrap(), direct, "{cand:?}");
        }
    }

    #[test]
    fn swap_delta_matches_cost_difference() {
        let inputs = vec![keys(&[1, 2, 3]), keys(&[3, 1, 2]), keys(&[2, 2, 1])];
        let t = ProfileTally::build(&inputs).unwrap();
        let perm = [2 as ElementId, 0, 1];
        let base = t
            .kemeny_cost_x2(&BucketOrder::from_permutation(&perm).unwrap())
            .unwrap() as i64;
        for i in 0..2 {
            let mut sw = perm;
            sw.swap(i, i + 1);
            let after = t
                .kemeny_cost_x2(&BucketOrder::from_permutation(&sw).unwrap())
                .unwrap() as i64;
            assert_eq!(after - base, t.swap_delta_x2(perm[i], perm[i + 1]));
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let inputs: Vec<BucketOrder> = (0..13)
            .map(|i| {
                let k: Vec<i64> = (0..9).map(|e| ((e * (i + 2) + i) % 4) as i64).collect();
                keys(&k)
            })
            .collect();
        let seq = ProfileTally::build(&inputs).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            assert_eq!(
                ProfileTally::build_parallel(&inputs, threads).unwrap(),
                seq,
                "threads = {threads}"
            );
            assert_eq!(
                ProfileTally::build_parallel_unclamped(&inputs, threads).unwrap(),
                seq,
                "unclamped threads = {threads}"
            );
        }
        for chunk in [1usize, 2, 3, 5, 13, 1000] {
            assert_eq!(
                ProfileTally::build_with_chunk(&inputs, chunk).unwrap(),
                seq,
                "chunk = {chunk}"
            );
        }
    }

    #[test]
    fn degenerate_domains_and_errors() {
        let t = ProfileTally::build(&[BucketOrder::trivial(0)]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.kemeny_cost_x2(&BucketOrder::trivial(0)).unwrap(), 0);
        let t = ProfileTally::build(&[BucketOrder::trivial(1)]).unwrap();
        assert_eq!(t.kemeny_cost_x2(&BucketOrder::trivial(1)).unwrap(), 0);
        assert!(ProfileTally::build(&[]).is_err());
        assert!(
            ProfileTally::build(&[BucketOrder::trivial(2), BucketOrder::trivial(3)]).is_err()
        );
        let t = ProfileTally::build(&[BucketOrder::trivial(2)]).unwrap();
        assert!(t.kemeny_cost_x2(&BucketOrder::trivial(3)).is_err());
    }
}
