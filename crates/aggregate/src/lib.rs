//! Rank aggregation for partial rankings (Section 6 of Fagin, Kumar,
//! Mahdian, Sivakumar, Vee, PODS 2004), plus exact optima and classical
//! baselines for evaluating it.
//!
//! The centerpiece is **median-rank aggregation**: take the per-element
//! median `f` of the input partial rankings' positions (Lemma 8 — the
//! median minimizes `Σ L1`), then shape `f` into the desired output:
//!
//! * [`median::aggregate_top_k`] — a top-k list within factor **3** of the
//!   optimal top-k list under `Fprof` (Theorem 9);
//! * [`median::aggregate_full`] — a full ranking; when the inputs are full
//!   rankings this is within factor **2** of *any* aggregation
//!   (Theorem 11), answering an open question of earlier work;
//! * [`dp::optimal_bucketing`] — the `O(n²)` dynamic program of Appendix
//!   A.6.4 (the paper's Figure 1) that turns `f` into the partial ranking
//!   `f†` minimizing `L1(f†, f)`, giving a factor-**2**/**3** approximation
//!   against all partial rankings (Theorem 10);
//! * [`median::aggregate_to_type`] — output of any fixed type
//!   (Corollary 30), with the strong-optimality guarantee of Theorem 35.
//!
//! By the metric equivalences (Theorem 7), an approximation factor under
//! `Fprof` transfers, with constant blow-up, to `Kprof`, `KHaus`, `FHaus`.
//!
//! For evaluation, the crate also ships exact optima
//! ([`exact::optimal_partial_ranking`] by enumeration,
//! [`exact::kemeny_optimal_full`] by Held–Karp,
//! [`exact::footrule_optimal_full`] by min-cost perfect matching — the
//! paper's footnote 4) and the classical heuristics the paper positions
//! itself against ([`borda`], the Markov-chain methods [`markov`], and
//! local Kemenization [`local`]).
//!
//! # Example
//!
//! ```
//! use bucketrank_core::BucketOrder;
//! use bucketrank_aggregate::{cost, exact, median, MedianPolicy};
//!
//! // Three voters rank four dishes, with ties.
//! let v1 = BucketOrder::from_keys(&[1, 1, 2, 3]);
//! let v2 = BucketOrder::from_keys(&[1, 2, 2, 3]);
//! let v3 = BucketOrder::from_keys(&[2, 1, 3, 3]);
//! let inputs = [v1, v2, v3];
//!
//! let top2 = median::aggregate_top_k(&inputs, 2, MedianPolicy::Lower).unwrap();
//! assert_eq!(top2.top_k_len(), Some(2));
//!
//! // Theorem 9: within 3× of the best top-2 list under the Fprof objective.
//! let c = cost::total_cost_x2(cost::AggMetric::FProf, &top2, &inputs).unwrap();
//! let alpha = bucketrank_core::TypeSeq::top_k(4, 2).unwrap();
//! let (_, opt) = exact::optimal_of_type(&inputs, &alpha, cost::AggMetric::FProf).unwrap();
//! assert!(c <= 3 * opt);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bb;
pub mod borda;
pub mod cluster;
pub mod condorcet;
pub mod cost;
pub mod dp;
pub mod dynamic;
mod error;
pub mod exact;
pub mod hungarian;
pub mod kwiksort;
pub mod local;
pub mod markov;
pub mod median;
pub mod minmax;
pub mod schulze;
pub mod tally;
pub mod topk;
pub mod strong;

pub use dynamic::{DynamicProfile, DynamicSnapshot, VoterId};
pub use error::AggregateError;
pub use median::MedianPolicy;
pub use minmax::{ClassConstraints, MinMaxObjective, WindowRule};
pub use tally::ProfileTally;
