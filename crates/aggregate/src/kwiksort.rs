//! KwikSort: pivot-based rank aggregation (Ailon, Charikar, Newman,
//! STOC 2005) adapted to partial-ranking inputs.
//!
//! **Extension beyond the paper** (documented in `DESIGN.md`): KwikSort
//! postdates PODS 2004 but is the canonical comparison point for
//! Kemeny-style aggregation — an expected 11/7-approximation for full
//! rankings when combined with picking the better of KwikSort and a
//! random input. We include it as a quality baseline for the experiments;
//! with tie-aware majority costs it aggregates partial rankings into a
//! full ranking.
//!
//! The algorithm: pick a random pivot, split the remaining elements into
//! "ahead of pivot" / "behind pivot" by the weighted majority of the
//! inputs (ties counted half each way), recurse on both sides.

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// Runs KwikSort with the given RNG seed, returning a full ranking.
///
/// Builds the shared [`ProfileTally`] internally; callers that already
/// hold one (or run several tally consumers over the same profile)
/// should use [`kwiksort_with_tally`].
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn kwiksort(inputs: &[BucketOrder], seed: u64) -> Result<BucketOrder, AggregateError> {
    check_inputs(inputs)?;
    let tally = ProfileTally::build(inputs)?;
    kwiksort_with_tally(&tally, seed)
}

/// [`kwiksort`] over a prebuilt pairwise tally: the `O(m·n²)` weight
/// build is amortized away and only the `O(n log n)` expected pivot
/// recursion remains.
///
/// # Errors
/// Infallible in practice; `Result` kept for signature symmetry with
/// [`kwiksort`].
pub fn kwiksort_with_tally(
    tally: &ProfileTally,
    seed: u64,
) -> Result<BucketOrder, AggregateError> {
    let n = tally.len();
    let mut rng = SplitMix64::new(seed);
    let mut items: Vec<ElementId> = (0..n as ElementId).collect();
    let mut out = Vec::with_capacity(n);
    quick(&mut items, tally.weights_x2(), n, &mut rng, &mut out);
    BucketOrder::from_permutation(&out).map_err(Into::into)
}

fn quick(
    items: &mut [ElementId],
    w2: &[u32],
    n: usize,
    rng: &mut SplitMix64,
    out: &mut Vec<ElementId>,
) {
    match items.len() {
        0 => return,
        1 => {
            out.push(items[0]);
            return;
        }
        _ => {}
    }
    let pivot = items[(rng.next() % items.len() as u64) as usize];
    let mut ahead = Vec::new();
    let mut behind = Vec::new();
    for &e in items.iter() {
        if e == pivot {
            continue;
        }
        // e goes ahead of the pivot iff the weight for (e before pivot)
        // is at least the weight for (pivot before e); ties broken by id
        // for determinism given the seed.
        let ep = w2[e as usize * n + pivot as usize];
        let pe = w2[pivot as usize * n + e as usize];
        if ep > pe || (ep == pe && e < pivot) {
            ahead.push(e);
        } else {
            behind.push(e);
        }
    }
    quick(&mut ahead, w2, n, rng, out);
    out.push(pivot);
    quick(&mut behind, w2, n, rng, out);
}

/// Runs KwikSort `restarts` times with derived seeds and keeps the output
/// with the lowest `Kprof` objective.
///
/// # Errors
/// As [`kwiksort`].
pub fn kwiksort_best_of(
    inputs: &[BucketOrder],
    seed: u64,
    restarts: usize,
) -> Result<BucketOrder, AggregateError> {
    check_inputs(inputs)?;
    // One tally serves every restart: the pivot comparisons and the
    // O(n²) Kprof scoring of each candidate, with no per-restart pass
    // over the voters.
    let tally = ProfileTally::build(inputs)?;
    let mut best: Option<(BucketOrder, u64)> = None;
    for i in 0..restarts.max(1) {
        let cand = kwiksort_with_tally(&tally, seed.wrapping_add(i as u64))?;
        let c = tally.kemeny_cost_x2(&cand)?;
        if best.as_ref().is_none_or(|&(_, bc)| c < bc) {
            best = Some((cand, c));
        }
    }
    Ok(best.expect("restarts ≥ 1").0)
}

/// SplitMix64: tiny deterministic RNG, avoiding a `rand` dependency in
/// the library crate.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{total_cost_x2, AggMetric};
    use crate::exact::kemeny_optimal_full;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn output_is_a_full_ranking() {
        let inputs = vec![keys(&[1, 1, 2, 3]), keys(&[3, 2, 1, 1])];
        let out = kwiksort(&inputs, 7).unwrap();
        assert!(out.is_full());
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn unanimous_inputs_recovered() {
        let s = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
        let inputs = vec![s.clone(), s.clone(), s.clone()];
        for seed in 0..10 {
            let out = kwiksort(&inputs, seed).unwrap();
            assert_eq!(out, s, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let inputs = vec![keys(&[1, 2, 3, 4, 5]), keys(&[5, 4, 3, 2, 1]), keys(&[2, 1, 4, 3, 5])];
        assert_eq!(
            kwiksort(&inputs, 11).unwrap(),
            kwiksort(&inputs, 11).unwrap()
        );
    }

    #[test]
    fn cost_is_reasonable_vs_exact_kemeny() {
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5, 6]),
            keys(&[2, 1, 3, 5, 4, 6]),
            keys(&[1, 3, 2, 4, 6, 5]),
            keys(&[6, 5, 4, 3, 2, 1]),
            keys(&[1, 2, 4, 3, 5, 6]),
        ];
        let (_, opt) = kemeny_optimal_full(&inputs).unwrap();
        let out = kwiksort_best_of(&inputs, 3, 8).unwrap();
        let c = total_cost_x2(AggMetric::KProf, &out, &inputs).unwrap();
        // Expected guarantee for full inputs is small-constant; assert a
        // loose 3× sanity bound on this fixed instance.
        assert!(c <= 3 * opt.max(1), "{c} > 3·{opt}");
    }

    #[test]
    fn handles_tied_inputs() {
        let inputs = vec![BucketOrder::trivial(5), keys(&[1, 2, 3, 4, 5])];
        let out = kwiksort(&inputs, 1).unwrap();
        assert!(out.is_full());
    }

    #[test]
    fn errors() {
        assert!(kwiksort(&[], 0).is_err());
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(kwiksort(&[a, b], 0).is_err());
    }
}
