//! Clustering rankings: k-medoids over any of the paper's metrics.
//!
//! The abstract lists "similarity search and classification" among the
//! applications of partial-ranking metrics; the concrete workhorse is
//! k-medoids (PAM-style), which needs nothing from the objects except a
//! metric — exactly what Theorem 7 guarantees we have, with the freedom
//! to pick whichever of the four is cheapest (`Kprof`/`Fprof`) knowing
//! the clustering objective changes by at most the equivalence constants.
//!
//! The implementation is deterministic: farthest-first initialization
//! from the global medoid, then alternating assignment / medoid-update
//! until a fixed point.

use crate::cost::AggMetric;
use crate::error::check_inputs;
use crate::AggregateError;
use bucketrank_core::BucketOrder;
use bucketrank_metrics::batch;

/// The result of a k-medoids run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Indices (into the input slice) of the `k` medoids.
    pub medoids: Vec<usize>,
    /// `assignment[i]` = index into `medoids` of input `i`'s cluster.
    pub assignment: Vec<usize>,
    /// The objective: `2·Σ_i d(σ_i, medoid(σ_i))`.
    pub cost_x2: u64,
    /// Iterations until the fixed point.
    pub iterations: usize,
}

impl Clustering {
    /// The members of cluster `c` (indices into the input slice).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }
}

/// Runs k-medoids over the rankings under the chosen metric.
///
/// # Errors
/// [`AggregateError::NoInputs`], [`AggregateError::DomainMismatch`], or
/// [`AggregateError::InvalidK`] when `k` is 0 or exceeds the input count.
pub fn k_medoids(
    inputs: &[BucketOrder],
    k: usize,
    metric: AggMetric,
) -> Result<Clustering, AggregateError> {
    check_inputs(inputs)?;
    let m = inputs.len();
    if k == 0 || k > m {
        return Err(AggregateError::InvalidK { k, domain_size: m });
    }
    // Full pairwise matrix once, via the prepared batch engine (each
    // input prepared once): every later step is table lookups.
    let (bm, scale) = metric.batch_metric();
    let mx = batch::pairwise_matrix(inputs, bm)?;
    let dist = |a: usize, b: usize| scale * mx.get(a, b);

    // Farthest-first init, seeded at the global medoid.
    let global_medoid = (0..m)
        .min_by_key(|&i| ((0..m).map(|j| dist(i, j)).sum::<u64>(), i))
        .expect("inputs nonempty");
    let mut medoids = vec![global_medoid];
    while medoids.len() < k {
        let next = (0..m)
            .filter(|i| !medoids.contains(i))
            .max_by_key(|&i| {
                (
                    medoids.iter().map(|&c| dist(i, c)).min().unwrap_or(0),
                    std::cmp::Reverse(i),
                )
            })
            .expect("k ≤ m leaves a candidate");
        medoids.push(next);
    }

    let mut assignment = vec![0usize; m];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Assignment step (ties to the lower cluster index).
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = (0..medoids.len())
                .min_by_key(|&c| (dist(i, medoids[c]), c))
                .expect("k ≥ 1");
        }
        // Update step: best medoid per cluster.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter_map(|(i, &a)| (a == c).then_some(i))
                .collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by_key(|&cand| {
                    (
                        members.iter().map(|&x| dist(cand, x)).sum::<u64>(),
                        cand,
                    )
                })
                .expect("members nonempty");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed || iterations > m {
            break;
        }
    }
    let cost_x2 = assignment
        .iter()
        .enumerate()
        .map(|(i, &a)| dist(i, medoids[a]))
        .sum();
    Ok(Clustering {
        medoids,
        assignment,
        cost_x2,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::distance_x2;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    /// Two tight groups: near-identity rankings and near-reverse ones.
    fn two_camps() -> Vec<BucketOrder> {
        vec![
            keys(&[1, 2, 3, 4, 5, 6]),
            keys(&[1, 2, 3, 4, 6, 5]),
            keys(&[2, 1, 3, 4, 5, 6]),
            keys(&[6, 5, 4, 3, 2, 1]),
            keys(&[6, 5, 4, 3, 1, 2]),
            keys(&[5, 6, 4, 3, 2, 1]),
        ]
    }

    #[test]
    fn separates_two_camps() {
        for metric in AggMetric::ALL {
            let c = k_medoids(&two_camps(), 2, metric).unwrap();
            let a = c.assignment.clone();
            assert_eq!(a[0], a[1]);
            assert_eq!(a[1], a[2]);
            assert_eq!(a[3], a[4]);
            assert_eq!(a[4], a[5]);
            assert_ne!(a[0], a[3], "{}: camps merged", metric.name());
            // Two nonempty clusters.
            assert_eq!(c.members(0).len() + c.members(1).len(), 6);
        }
    }

    #[test]
    fn k_equals_one_picks_global_medoid() {
        let inputs = two_camps();
        let c = k_medoids(&inputs, 1, AggMetric::FProf).unwrap();
        assert_eq!(c.medoids.len(), 1);
        // The medoid minimizes the total distance (ties by index).
        let direct: Vec<u64> = (0..inputs.len())
            .map(|i| {
                inputs
                    .iter()
                    .map(|s| distance_x2(AggMetric::FProf, &inputs[i], s).unwrap())
                    .sum()
            })
            .collect();
        assert_eq!(direct[c.medoids[0]], *direct.iter().min().unwrap());
        assert_eq!(c.cost_x2, direct[c.medoids[0]]);
    }

    #[test]
    fn k_equals_m_gives_zero_cost() {
        let inputs = two_camps();
        let c = k_medoids(&inputs, inputs.len(), AggMetric::KProf).unwrap();
        assert_eq!(c.cost_x2, 0);
        // Every input is its own medoid.
        let mut medoids = c.medoids.clone();
        medoids.sort_unstable();
        assert_eq!(medoids, (0..inputs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn equivalence_transfers_objective_quality() {
        // Theorem 7 in application: cluster under Kprof, evaluate under
        // FHaus — the objective is within the equivalence constants of
        // clustering under FHaus directly.
        let inputs = two_camps();
        let under_k = k_medoids(&inputs, 2, AggMetric::KProf).unwrap();
        let under_f = k_medoids(&inputs, 2, AggMetric::FHaus).unwrap();
        let eval = |c: &Clustering| -> u64 {
            c.assignment
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    distance_x2(AggMetric::FHaus, &inputs[i], &inputs[c.medoids[a]]).unwrap()
                })
                .sum()
        };
        let via_k = eval(&under_k);
        let direct = eval(&under_f);
        assert!(via_k <= 4 * direct.max(1), "{via_k} vs {direct}");
    }

    #[test]
    fn deterministic() {
        let inputs = two_camps();
        assert_eq!(
            k_medoids(&inputs, 2, AggMetric::KProf).unwrap(),
            k_medoids(&inputs, 2, AggMetric::KProf).unwrap()
        );
    }

    #[test]
    fn errors() {
        let inputs = two_camps();
        assert!(k_medoids(&inputs, 0, AggMetric::KProf).is_err());
        assert!(k_medoids(&inputs, 99, AggMetric::KProf).is_err());
        assert!(k_medoids(&[], 1, AggMetric::KProf).is_err());
    }
}
