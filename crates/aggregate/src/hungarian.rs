//! Minimum-cost perfect matching (assignment problem), `O(n³)`.
//!
//! Substrate for the exact footrule-optimal aggregation: the paper's
//! footnote 4 observes that an optimal solution to the Spearman footrule
//! aggregation problem "requires the computation of a minimum-cost
//! perfect matching" between elements and output positions.
//!
//! This is the classical Hungarian algorithm in its potential/dual form
//! (Kuhn–Munkres with Dijkstra-style augmentation), solving square
//! assignment instances with `i64` costs exactly.

/// Solves the assignment problem for a square cost matrix given in
/// row-major order: returns `(assignment, total_cost)` where
/// `assignment[row] = column`.
///
/// # Panics
/// Panics if `cost.len() != n * n`.
pub fn solve_assignment(n: usize, cost: &[i64]) -> (Vec<usize>, i64) {
    assert_eq!(cost.len(), n * n, "cost matrix must be n × n");
    if n == 0 {
        return (vec![], 0);
    }
    const INF: i64 = i64::MAX / 4;
    // 1-indexed internals per the classical formulation.
    let mut u = vec![0i64; n + 1]; // row potentials
    let mut v = vec![0i64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r * n + c])
        .sum();
    (assignment, total)
}

/// Brute-force assignment by permutation enumeration, for differential
/// testing.
///
/// # Panics
/// Panics if `n > 9` or `cost.len() != n * n`.
pub fn solve_assignment_brute(n: usize, cost: &[i64]) -> i64 {
    assert!(n <= 9, "brute-force assignment limited to n ≤ 9");
    assert_eq!(cost.len(), n * n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = i64::MAX;
    permute(&mut perm, 0, cost, n, &mut best);
    if n == 0 {
        0
    } else {
        best
    }
}

fn permute(perm: &mut Vec<usize>, k: usize, cost: &[i64], n: usize, best: &mut i64) {
    if k == n {
        let total: i64 = perm.iter().enumerate().map(|(r, &c)| cost[r * n + c]).sum();
        *best = (*best).min(total);
        return;
    }
    for i in k..n {
        perm.swap(k, i);
        permute(perm, k + 1, cost, n, best);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sizes() {
        assert_eq!(solve_assignment(0, &[]), (vec![], 0));
        assert_eq!(solve_assignment(1, &[42]), (vec![0], 42));
    }

    #[test]
    fn small_known_instance() {
        // Classic 3×3.
        let cost = [4, 1, 3, 2, 0, 5, 3, 2, 2];
        let (asg, total) = solve_assignment(3, &cost);
        assert_eq!(total, 5); // 1 + 2 + 2
        assert_eq!(asg, vec![1, 0, 2]);
    }

    #[test]
    fn handles_negative_costs() {
        let cost = [-5, 0, 0, -5];
        let (_, total) = solve_assignment(2, &cost);
        assert_eq!(total, -10);
    }

    #[test]
    fn matches_brute_force_fuzz() {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as i64 - 20
        };
        for n in 1..=6 {
            for _ in 0..60 {
                let cost: Vec<i64> = (0..n * n).map(|_| next()).collect();
                let (asg, total) = solve_assignment(n, &cost);
                // Assignment must be a permutation.
                let mut seen = vec![false; n];
                for &c in &asg {
                    assert!(!seen[c]);
                    seen[c] = true;
                }
                assert_eq!(total, solve_assignment_brute(n, &cost), "n = {n}");
            }
        }
    }
}
