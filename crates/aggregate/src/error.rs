//! Error type for aggregation.

use bucketrank_core::CoreError;
use bucketrank_metrics::MetricsError;
use std::fmt;

/// Errors produced by aggregation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AggregateError {
    /// Aggregation requires at least one input ranking.
    NoInputs,
    /// The input rankings do not all share one domain.
    DomainMismatch {
        /// Domain size of the first input.
        expected: usize,
        /// Differing domain size encountered.
        found: usize,
    },
    /// `k` exceeds the domain size.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// The domain size.
        domain_size: usize,
    },
    /// A requested output type does not sum to the domain size.
    TypeSizeMismatch {
        /// Sum of the type's bucket sizes.
        type_total: usize,
        /// The domain size.
        domain_size: usize,
    },
    /// An exact algorithm was asked for a domain too large to enumerate.
    DomainTooLarge {
        /// The domain size given.
        n: usize,
        /// The maximum the algorithm accepts.
        max: usize,
    },
    /// An algorithm restricted to full-ranking inputs received ties.
    NotFullRanking,
    /// A voter id not present in a dynamic profile was removed or
    /// replaced. Returned typed — never a wrapped panic — so streaming
    /// callers can retry or drop the edit without tearing down the
    /// engine (`remove_voter` on an absent id must not underflow any
    /// tally cell).
    UnknownVoter {
        /// The id the caller presented.
        id: u64,
    },
    /// A dynamic profile is at the voter-capacity limit of its `u32`
    /// tally cells; the push was rejected with state unchanged.
    TooManyVoters {
        /// The maximum number of voters the tally cells can hold.
        limit: usize,
    },
    /// A restore ([`crate::dynamic::DynamicProfile::from_voters`])
    /// presented the same voter id twice, or an id not strictly below
    /// the declared `next_id`. Checkpoint decoders surface this as
    /// corruption rather than silently double-counting a voter or
    /// letting a future push collide with a restored id.
    InvalidVoterId {
        /// The offending id.
        id: u64,
    },
    /// A [`crate::minmax::WindowRule`]'s prefix window lies outside
    /// `1..=n`.
    InvalidConstraintWindow {
        /// Index of the offending rule.
        index: usize,
        /// The window given.
        window: usize,
        /// The domain size the labels describe.
        domain_size: usize,
    },
    /// A [`crate::minmax::WindowRule`] has `min > max` or a `max`
    /// exceeding its own window.
    InvalidConstraintBounds {
        /// Index of the offending rule.
        index: usize,
        /// The rule's `min`.
        min: usize,
        /// The rule's `max`.
        max: usize,
        /// The rule's window.
        window: usize,
    },
    /// A [`crate::minmax::WindowRule`] references a class label no
    /// candidate carries.
    UnknownClass {
        /// Index of the offending rule.
        index: usize,
        /// The class label the rule names.
        class: u32,
    },
    /// A well-formed rule set that no permutation can satisfy (caps and
    /// floors collide). Raised by the constrained solvers and by
    /// [`crate::minmax::ClassConstraints::repair`].
    InfeasibleConstraints,
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AggregateError::NoInputs => write!(f, "aggregation requires at least one input"),
            AggregateError::DomainMismatch { expected, found } => write!(
                f,
                "inputs must share a domain (expected size {expected}, found {found})"
            ),
            AggregateError::InvalidK { k, domain_size } => {
                write!(f, "k = {k} exceeds the domain size {domain_size}")
            }
            AggregateError::TypeSizeMismatch {
                type_total,
                domain_size,
            } => write!(
                f,
                "output type sums to {type_total} but the domain has {domain_size} elements"
            ),
            AggregateError::DomainTooLarge { n, max } => write!(
                f,
                "exact algorithm limited to domains of size ≤ {max}, got {n}"
            ),
            AggregateError::NotFullRanking => {
                write!(f, "algorithm requires full-ranking inputs (no ties)")
            }
            AggregateError::UnknownVoter { id } => {
                write!(f, "voter {id} is not present in the dynamic profile")
            }
            AggregateError::TooManyVoters { limit } => {
                write!(f, "dynamic profile is full ({limit} voters)")
            }
            AggregateError::InvalidVoterId { id } => {
                write!(f, "voter id {id} is invalid for restore (duplicate or ≥ next_id)")
            }
            AggregateError::InvalidConstraintWindow {
                index,
                window,
                domain_size,
            } => write!(
                f,
                "constraint {index}: window {window} outside 1..={domain_size}"
            ),
            AggregateError::InvalidConstraintBounds {
                index,
                min,
                max,
                window,
            } => write!(
                f,
                "constraint {index}: bounds min {min}, max {max} invalid for window {window}"
            ),
            AggregateError::UnknownClass { index, class } => write!(
                f,
                "constraint {index} references class {class}, which no candidate carries"
            ),
            AggregateError::InfeasibleConstraints => {
                write!(f, "no permutation satisfies the class constraints")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

impl From<CoreError> for AggregateError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::DomainMismatch { left, right } => AggregateError::DomainMismatch {
                expected: left,
                found: right,
            },
            CoreError::TypeSizeMismatch {
                type_total,
                domain_size,
            } => AggregateError::TypeSizeMismatch {
                type_total,
                domain_size,
            },
            CoreError::InvalidK { k, domain_size } => AggregateError::InvalidK { k, domain_size },
            other => unreachable!("unexpected core error in aggregation: {other}"),
        }
    }
}

impl From<MetricsError> for AggregateError {
    fn from(e: MetricsError) -> Self {
        match e {
            MetricsError::DomainMismatch { left, right } => AggregateError::DomainMismatch {
                expected: left,
                found: right,
            },
            MetricsError::NotFullRanking => AggregateError::NotFullRanking,
            // A weight vector that does not cover the shared domain is
            // the same shape fault as a mismatched input ranking.
            MetricsError::WeightsLengthMismatch { weights, domain } => {
                AggregateError::DomainMismatch {
                    expected: domain,
                    found: weights,
                }
            }
            other => unreachable!("unexpected metrics error in aggregation: {other}"),
        }
    }
}

/// Checks a nonempty input slice sharing one domain; returns the domain
/// size.
pub(crate) fn check_inputs(
    inputs: &[bucketrank_core::BucketOrder],
) -> Result<usize, AggregateError> {
    let first = inputs.first().ok_or(AggregateError::NoInputs)?;
    let n = first.len();
    for s in &inputs[1..] {
        if s.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: s.len(),
            });
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AggregateError::NoInputs.to_string().contains("at least one"));
        assert!(AggregateError::DomainTooLarge { n: 12, max: 8 }
            .to_string()
            .contains("12"));
        assert!(AggregateError::UnknownVoter { id: 7 }
            .to_string()
            .contains("voter 7"));
        assert!(AggregateError::TooManyVoters { limit: 4 }
            .to_string()
            .contains('4'));
        assert!(AggregateError::InvalidConstraintWindow {
            index: 2,
            window: 9,
            domain_size: 5
        }
        .to_string()
        .contains("window 9"));
        assert!(AggregateError::InvalidConstraintBounds {
            index: 0,
            min: 3,
            max: 1,
            window: 4
        }
        .to_string()
        .contains("min 3"));
        assert!(AggregateError::UnknownClass { index: 1, class: 7 }
            .to_string()
            .contains("class 7"));
        assert!(AggregateError::InfeasibleConstraints
            .to_string()
            .contains("no permutation"));
    }

    #[test]
    fn check_inputs_helper() {
        use bucketrank_core::BucketOrder;
        assert_eq!(check_inputs(&[]), Err(AggregateError::NoInputs));
        let a = BucketOrder::trivial(3);
        let b = BucketOrder::trivial(4);
        assert_eq!(check_inputs(std::slice::from_ref(&a)), Ok(3));
        assert_eq!(
            check_inputs(&[a, b]),
            Err(AggregateError::DomainMismatch {
                expected: 3,
                found: 4
            })
        );
    }
}
