//! The Markov-chain rank-aggregation heuristics MC1–MC4 of Dwork, Kumar,
//! Naor and Sivakumar (WWW 2001), adapted to partial rankings.
//!
//! These are the "more sophisticated heuristics … based on matchings and
//! Markov chains" the paper contrasts with the median algorithm
//! (Section 1): they can produce good aggregations but are not
//! database-friendly — they need the full pairwise preference structure up
//! front. We implement them as quality baselines for experiment E8.
//!
//! Each chain has state space `D`; transitions go from the current
//! element `u` toward elements that beat it in the inputs. With ties,
//! "`v` is ranked higher than `u` by `σ`" means `σ(v) < σ(u)` strictly.
//! The stationary distribution (computed by power iteration on an
//! ε-smoothed chain, which is ergodic) orders the elements: higher
//! stationary mass = better rank.

use crate::error::check_inputs;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};

/// Which of the four chains of Dwork et al. to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkovChain {
    /// MC1: from `u`, pick a uniformly random `(σ, v)` with `σ(v) ≤ σ(u)`
    /// … here: move to a uniformly random element among those ranked at
    /// least as high as `u` by a uniformly random input.
    Mc1,
    /// MC2: pick a random input `σ`, then a uniform `v` with
    /// `σ(v) ≤ σ(u)`.
    Mc2,
    /// MC3: pick a random input `σ` and a uniform `v`; move if
    /// `σ(v) < σ(u)`, else stay.
    Mc3,
    /// MC4: pick a uniform `v`; move if a strict majority of the inputs
    /// rank `v` higher than `u`, else stay.
    Mc4,
}

impl MarkovChain {
    /// All four chains, for sweeps.
    pub const ALL: [MarkovChain; 4] = [
        MarkovChain::Mc1,
        MarkovChain::Mc2,
        MarkovChain::Mc3,
        MarkovChain::Mc4,
    ];

    /// Printable name.
    pub fn name(self) -> &'static str {
        match self {
            MarkovChain::Mc1 => "MC1",
            MarkovChain::Mc2 => "MC2",
            MarkovChain::Mc3 => "MC3",
            MarkovChain::Mc4 => "MC4",
        }
    }
}

/// Options for the stationary-distribution computation.
#[derive(Debug, Clone, Copy)]
pub struct MarkovOptions {
    /// Teleportation weight mixed in to guarantee ergodicity (as in
    /// PageRank); `0.05` is a reasonable default.
    pub epsilon: f64,
    /// Maximum power-iteration steps.
    pub max_iters: usize,
    /// `L1` convergence tolerance.
    pub tolerance: f64,
}

impl Default for MarkovOptions {
    fn default() -> Self {
        MarkovOptions {
            epsilon: 0.05,
            max_iters: 200,
            tolerance: 1e-12,
        }
    }
}

/// Runs the chosen Markov chain and returns the aggregate ranking
/// (descending stationary probability; near-equal probabilities are *not*
/// tied — the output is a full ranking with id tie-breaks).
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn markov_aggregate(
    inputs: &[BucketOrder],
    chain: MarkovChain,
    opts: MarkovOptions,
) -> Result<BucketOrder, AggregateError> {
    let pi = stationary_distribution(inputs, chain, opts)?;
    // Rank by stationary mass, descending; quantize to avoid float-noise
    // ordering artifacts, then break residual ties by element id.
    let n = pi.len();
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.sort_by(|&a, &b| {
        pi[b as usize]
            .partial_cmp(&pi[a as usize])
            .expect("stationary probabilities are finite")
            .then(a.cmp(&b))
    });
    Ok(BucketOrder::from_permutation(&ids).expect("ids form a permutation"))
}

/// The stationary distribution of the chosen chain (ε-smoothed), indexed
/// by element id.
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
pub fn stationary_distribution(
    inputs: &[BucketOrder],
    chain: MarkovChain,
    opts: MarkovOptions,
) -> Result<Vec<f64>, AggregateError> {
    let n = check_inputs(inputs)?;
    if n == 0 {
        return Ok(vec![]);
    }
    let p = transition_matrix(inputs, chain, n);
    // Power iteration on π ← (1−ε)·πP + ε·uniform.
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_iters {
        next.fill(opts.epsilon / n as f64);
        for u in 0..n {
            let mass = (1.0 - opts.epsilon) * pi[u];
            for v in 0..n {
                next[v] += mass * p[u * n + v];
            }
        }
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < opts.tolerance {
            break;
        }
    }
    Ok(pi)
}

/// Builds the row-stochastic transition matrix of the chain.
fn transition_matrix(inputs: &[BucketOrder], chain: MarkovChain, n: usize) -> Vec<f64> {
    let m = inputs.len() as f64;
    // MC4's transition condition is a pure function of the pairwise
    // tally; building it once replaces the O(m·n) `prefers()` scan the
    // old code repeated per transition-row entry (O(m·n²) per state).
    let tally = match chain {
        MarkovChain::Mc4 => {
            Some(ProfileTally::build(inputs).expect("inputs validated by caller"))
        }
        _ => None,
    };
    let mut p = vec![0.0f64; n * n];
    for u in 0..n as ElementId {
        let row = &mut p[u as usize * n..(u as usize + 1) * n];
        match chain {
            MarkovChain::Mc1 => {
                // Uniform over the multiset union of {v : σ(v) ≤ σ(u)}.
                let mut weights = vec![0.0f64; n];
                let mut total = 0.0;
                for s in inputs {
                    for v in 0..n as ElementId {
                        if s.position(v) <= s.position(u) {
                            weights[v as usize] += 1.0;
                            total += 1.0;
                        }
                    }
                }
                for v in 0..n {
                    row[v] = weights[v] / total;
                }
            }
            MarkovChain::Mc2 => {
                // Pick σ uniformly, then uniform v with σ(v) ≤ σ(u).
                for s in inputs {
                    let ahead: Vec<ElementId> = (0..n as ElementId)
                        .filter(|&v| s.position(v) <= s.position(u))
                        .collect();
                    let w = 1.0 / (m * ahead.len() as f64);
                    for v in ahead {
                        row[v as usize] += w;
                    }
                }
            }
            MarkovChain::Mc3 => {
                // Pick σ and v uniformly; move iff σ(v) < σ(u).
                for s in inputs {
                    for v in 0..n as ElementId {
                        if s.position(v) < s.position(u) {
                            row[v as usize] += 1.0 / (m * n as f64);
                        }
                    }
                }
                let moved: f64 = row.iter().sum();
                row[u as usize] += 1.0 - moved;
            }
            MarkovChain::Mc4 => {
                let t = tally.as_ref().expect("tally built for MC4");
                mc4_row_into(t, u, row);
            }
        }
    }
    p
}

/// Writes MC4's transition row for state `u` into `row` (length `n`):
/// pick `v` uniformly; move iff a strict majority prefers `v` — the
/// whole column of majority tests comes from the tally's row-local
/// query (sequential reads, not a stride-n walk down the strict
/// matrix). Written branchless: the majority bit is data, not control,
/// so the ~50% unpredictable branch per entry disappears.
fn mc4_row_into(t: &ProfileTally, u: ElementId, row: &mut [f64]) {
    let n = t.len();
    let inv = 1.0 / n as f64;
    let mut moved = 0usize;
    for (v, wins) in t.strict_majorities_against(u).enumerate() {
        let go = wins & (v != u as usize);
        row[v] = f64::from(go as u8) * inv;
        moved += go as usize;
    }
    row[u as usize] = 1.0 - moved as f64 * inv;
}

/// The full MC4 transition matrix (row-major, row-stochastic) from a
/// prebuilt pairwise tally — e.g. a [`crate::dynamic::DynamicSnapshot`]'s.
/// MC4's row for state `u` is a pure function of the tally's row `u`,
/// which is what makes it maintainable under the dynamic engine's
/// dirty-row contract (see [`refresh_mc4_rows`]).
pub fn mc4_transition_matrix(tally: &ProfileTally) -> Vec<f64> {
    let n = tally.len();
    let mut p = vec![0.0f64; n * n];
    for u in 0..n as ElementId {
        mc4_row_into(tally, u, &mut p[u as usize * n..(u as usize + 1) * n]);
    }
    p
}

/// Recomputes in place only the MC4 transition rows named in `rows` —
/// the dirty-row consumer hook for [`crate::dynamic`]: refreshing the
/// rows drained by `DynamicProfile::take_dirty` after an edit leaves
/// `p` equal to a full [`mc4_transition_matrix`] rebuild.
///
/// # Errors
/// [`AggregateError::DomainMismatch`] if `p` is not an `n × n` matrix
/// for the tally's domain.
pub fn refresh_mc4_rows(
    tally: &ProfileTally,
    p: &mut [f64],
    rows: &[ElementId],
) -> Result<(), AggregateError> {
    let n = tally.len();
    if p.len() != n * n {
        return Err(AggregateError::DomainMismatch {
            expected: n * n,
            found: p.len(),
        });
    }
    for &u in rows {
        mc4_row_into(tally, u, &mut p[u as usize * n..(u as usize + 1) * n]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn mc4_matrix_from_tally_matches_batch_build() {
        let inputs = vec![keys(&[1, 1, 2, 3]), keys(&[3, 2, 2, 1]), keys(&[2, 1, 3, 1])];
        let tally = ProfileTally::build(&inputs).unwrap();
        assert_eq!(
            mc4_transition_matrix(&tally),
            transition_matrix(&inputs, MarkovChain::Mc4, 4)
        );
    }

    #[test]
    fn refresh_mc4_rows_matches_full_rebuild() {
        let before = vec![keys(&[1, 2, 3, 4]), keys(&[2, 1, 4, 3]), keys(&[1, 1, 2, 2])];
        let after = vec![keys(&[1, 2, 3, 4]), keys(&[2, 1, 4, 3]), keys(&[2, 1, 3, 2])];
        let old_tally = ProfileTally::build(&before).unwrap();
        let new_tally = ProfileTally::build(&after).unwrap();
        let mut p = mc4_transition_matrix(&old_tally);
        refresh_mc4_rows(&new_tally, &mut p, &[0, 1, 2, 3]).unwrap();
        assert_eq!(p, mc4_transition_matrix(&new_tally));
        let mut wrong = vec![0.0; 9];
        assert!(matches!(
            refresh_mc4_rows(&new_tally, &mut wrong, &[0]),
            Err(AggregateError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn unanimous_inputs_recovered_by_all_chains() {
        let s = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
        let inputs = vec![s.clone(), s.clone(), s.clone()];
        for chain in MarkovChain::ALL {
            let out = markov_aggregate(&inputs, chain, MarkovOptions::default()).unwrap();
            assert_eq!(
                out.as_permutation(),
                s.as_permutation(),
                "{} failed",
                chain.name()
            );
        }
    }

    #[test]
    fn rows_are_stochastic() {
        let inputs = vec![keys(&[1, 1, 2, 3]), keys(&[3, 2, 2, 1]), keys(&[2, 1, 3, 1])];
        for chain in MarkovChain::ALL {
            let p = transition_matrix(&inputs, chain, 4);
            for u in 0..4 {
                let row_sum: f64 = p[u * 4..(u + 1) * 4].iter().sum();
                assert!(
                    (row_sum - 1.0).abs() < 1e-9,
                    "{} row {u} sums to {row_sum}",
                    chain.name()
                );
                assert!(p[u * 4..(u + 1) * 4].iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn stationary_sums_to_one() {
        let inputs = vec![keys(&[1, 2, 3]), keys(&[2, 3, 1]), keys(&[3, 1, 2])];
        for chain in MarkovChain::ALL {
            let pi = stationary_distribution(&inputs, chain, MarkovOptions::default()).unwrap();
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", chain.name());
        }
    }

    #[test]
    fn mc4_condorcet_winner_tops() {
        // Element 0 beats everyone pairwise in a majority of inputs.
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[1, 3, 4, 2]),
            keys(&[2, 1, 4, 3]),
        ];
        let out = markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default()).unwrap();
        assert_eq!(out.bucket_index(0), 0);
    }

    #[test]
    fn handles_ties_gracefully() {
        let inputs = vec![BucketOrder::trivial(3), keys(&[1, 2, 3])];
        for chain in MarkovChain::ALL {
            let out = markov_aggregate(&inputs, chain, MarkovOptions::default()).unwrap();
            assert!(out.is_full());
        }
    }

    #[test]
    fn errors() {
        assert!(markov_aggregate(&[], MarkovChain::Mc4, MarkovOptions::default()).is_err());
    }
}
