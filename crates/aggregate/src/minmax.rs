//! MinMax-objective and class-constrained rank aggregation.
//!
//! Every other aggregator in this crate minimizes the *sum* of
//! distances to the voters (the Kemeny-style objective of the source
//! paper). Fairness-style workloads instead ask for the *maximum*
//! minimized: no single voter should end up far from the consensus.
//! This module ships that objective end to end, grounded in
//! "Multiclass MinMax Rank Aggregation" (arXiv 1701.08305):
//!
//! * [`MinMaxObjective`] — the per-voter analogue of
//!   [`ProfileTally`](crate::ProfileTally): per-voter bucket-index maps
//!   giving O(1) pair costs and O(1)-per-voter adjacent-swap deltas, so
//!   heuristics score moves without rescanning the profile;
//! * [`minmax_optimal_bb`] — exact small-n solving in the style of
//!   [`crate::bb`], with a per-voter tied-pairs lower bound driving a
//!   max-distance prune;
//! * [`minmax_kwiksort_best_of`] / [`minmax_local_search`] /
//!   [`minmax_aggregate`] — heuristics: KwikSort restarts scored by
//!   max-cost, plus a minmax-aware local search that moves the current
//!   *argmax voter* closer instead of the sum;
//! * [`ClassConstraints`] — candidate → class labels with per-class
//!   min/max counts inside prefix windows ([`WindowRule`]), enforced by
//!   pruning in the exact search and by an EDF-style repair step in the
//!   heuristics.
//!
//! The per-voter distance is `Kprof ×2` (the tie-aware Kendall profile
//! metric of the source paper, doubled so ties cost an integral 1), so
//! minmax optima are directly comparable with every sum-objective
//! aggregator in the crate.

use crate::bb::BbStats;
use crate::error::check_inputs;
use crate::kwiksort::kwiksort_with_tally;
use crate::tally::ProfileTally;
use crate::AggregateError;
use bucketrank_core::{BucketOrder, ElementId};
use std::cmp::Ordering;

/// Hard cap on the domain size the exact solver accepts (the minmax
/// bound is weaker than the Kemeny pairwise bound, so the searchable
/// range is smaller than [`crate::bb::MAX_BB_N`]).
pub const MAX_MINMAX_N: usize = 16;

/// The seed the server's `MinMaxAgg` opcode (and its test mirrors) use,
/// so replies are byte-predictable.
pub const DEFAULT_SEED: u64 = 0x4D4D_5831;

/// KwikSort restarts used by [`minmax_aggregate`].
pub const DEFAULT_RESTARTS: usize = 8;

// ---------------------------------------------------------------------
// Objective
// ---------------------------------------------------------------------

/// The minmax objective over a fixed profile: per-voter bucket-index
/// maps supporting O(1) pair costs, O(1)-per-voter adjacent-swap
/// deltas, and O(n²)-per-voter full rescans.
///
/// Where [`ProfileTally`] sums all voters into one `n×n` weight matrix
/// (enough for any Σ-objective), the max objective needs every voter's
/// distance individually; this is the same precompute-once idea with
/// one lane per voter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinMaxObjective {
    n: usize,
    m: usize,
    /// Row-major `m × n`: `bof[v*n + e]` = voter `v`'s bucket index of
    /// element `e`.
    bof: Vec<u32>,
}

impl MinMaxObjective {
    /// Builds the objective from a profile.
    ///
    /// # Errors
    /// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`].
    pub fn build(inputs: &[BucketOrder]) -> Result<Self, AggregateError> {
        let n = check_inputs(inputs)?;
        let m = inputs.len();
        let mut bof = Vec::with_capacity(m * n);
        for r in inputs {
            bof.extend_from_slice(r.bucket_indices());
        }
        Ok(MinMaxObjective { n, m, bof })
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of voters.
    pub fn voters(&self) -> usize {
        self.m
    }

    /// Voter `voter`'s bucket index of element `e`.
    #[inline]
    pub fn bucket_of(&self, voter: usize, e: ElementId) -> u32 {
        self.bof[voter * self.n + e as usize]
    }

    /// Cost ×2 voter `voter` pays for ranking `ahead` strictly before
    /// `behind`: 2 if the voter prefers `behind`, 1 if tied, 0 if the
    /// voter agrees.
    #[inline]
    pub fn pair_cost_x2(&self, voter: usize, ahead: ElementId, behind: ElementId) -> u64 {
        let ba = self.bucket_of(voter, ahead);
        let bb = self.bucket_of(voter, behind);
        match bb.cmp(&ba) {
            Ordering::Less => 2,
            Ordering::Equal => 1,
            Ordering::Greater => 0,
        }
    }

    /// Change in voter `voter`'s cost ×2 when an adjacent pair currently
    /// ordered `ahead` before `behind` is swapped. O(1); heuristics use
    /// this instead of rescanning the profile.
    #[inline]
    pub fn swap_delta_x2(&self, voter: usize, ahead: ElementId, behind: ElementId) -> i64 {
        self.pair_cost_x2(voter, behind, ahead) as i64
            - self.pair_cost_x2(voter, ahead, behind) as i64
    }

    /// Voter `voter`'s `Kprof ×2` distance to `candidate` (which may
    /// itself contain ties).
    fn voter_cost_x2(&self, voter: usize, cand: &[u32]) -> u64 {
        let n = self.n;
        let row = &self.bof[voter * n..(voter + 1) * n];
        let mut cost = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                let c = cand[a].cmp(&cand[b]);
                let v = row[a].cmp(&row[b]);
                cost += match (c, v) {
                    (Ordering::Equal, Ordering::Equal) => 0,
                    (Ordering::Equal, _) | (_, Ordering::Equal) => 1,
                    _ => {
                        if c == v {
                            0
                        } else {
                            2
                        }
                    }
                };
            }
        }
        cost
    }

    /// Every voter's `Kprof ×2` distance to `candidate`.
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] if `candidate` has a
    /// different domain size.
    pub fn costs_x2(&self, candidate: &BucketOrder) -> Result<Vec<u64>, AggregateError> {
        if candidate.len() != self.n {
            return Err(AggregateError::DomainMismatch {
                expected: self.n,
                found: candidate.len(),
            });
        }
        let cand = candidate.bucket_indices();
        Ok((0..self.m).map(|v| self.voter_cost_x2(v, cand)).collect())
    }

    /// The objective value: the maximum voter distance to `candidate`.
    ///
    /// # Errors
    /// As [`MinMaxObjective::costs_x2`].
    pub fn max_cost_x2(&self, candidate: &BucketOrder) -> Result<u64, AggregateError> {
        Ok(self.costs_x2(candidate)?.into_iter().max().unwrap_or(0))
    }

    /// Voter cost of a full ranking given as a permutation slice.
    fn voter_perm_cost_x2(&self, voter: usize, perm: &[ElementId]) -> u64 {
        let mut cost = 0u64;
        for i in 0..perm.len() {
            for j in i + 1..perm.len() {
                cost += self.pair_cost_x2(voter, perm[i], perm[j]);
            }
        }
        cost
    }
}

// ---------------------------------------------------------------------
// Class constraints
// ---------------------------------------------------------------------

/// One prefix-window rule: among the first `window` positions of the
/// output, the number of candidates labeled `class` must lie in
/// `min..=max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowRule {
    /// Prefix length the rule applies to (`1..=n`).
    pub window: u32,
    /// The class label the rule counts.
    pub class: u32,
    /// Minimum occurrences of `class` within the window.
    pub min: u32,
    /// Maximum occurrences of `class` within the window.
    pub max: u32,
}

/// Candidate class labels plus a set of [`WindowRule`]s, validated at
/// construction and enforced by the constrained solvers.
///
/// Because every window is a prefix, feasibility and repair reduce to
/// scheduling unit jobs with release times (from `max` caps) and
/// deadlines (from `min` floors), where earliest-deadline-first is
/// exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassConstraints {
    labels: Vec<u32>,
    rules: Vec<WindowRule>,
    /// Sorted distinct labels; `dense[e]` indexes into it.
    classes: Vec<u32>,
    dense: Vec<u32>,
    totals: Vec<u32>,
    /// Per dense class, `(release, deadline)` of its k-th placement:
    /// the k-th candidate of the class must land at position
    /// `release ..= deadline-1`.
    jobs: Vec<Vec<(u32, u32)>>,
    /// A rule demands more of a class than exists, or some placement
    /// has `release ≥ deadline`: no permutation can satisfy the set.
    impossible: bool,
}

impl ClassConstraints {
    /// Validates labels + rules. The domain size is `labels.len()`.
    ///
    /// # Errors
    /// [`AggregateError::InvalidConstraintWindow`] /
    /// [`AggregateError::InvalidConstraintBounds`] /
    /// [`AggregateError::UnknownClass`] on a malformed rule.
    /// (Well-formed but unsatisfiable rule sets construct fine; the
    /// solvers report [`AggregateError::InfeasibleConstraints`].)
    pub fn new(labels: Vec<u32>, rules: Vec<WindowRule>) -> Result<Self, AggregateError> {
        let n = labels.len();
        let mut classes = labels.clone();
        classes.sort_unstable();
        classes.dedup();
        for (index, r) in rules.iter().enumerate() {
            if r.window == 0 || r.window as usize > n {
                return Err(AggregateError::InvalidConstraintWindow {
                    index,
                    window: r.window as usize,
                    domain_size: n,
                });
            }
            if r.min > r.max || r.max > r.window {
                return Err(AggregateError::InvalidConstraintBounds {
                    index,
                    min: r.min as usize,
                    max: r.max as usize,
                    window: r.window as usize,
                });
            }
            if classes.binary_search(&r.class).is_err() {
                return Err(AggregateError::UnknownClass {
                    index,
                    class: r.class,
                });
            }
        }
        let dense: Vec<u32> = labels
            .iter()
            .map(|l| classes.binary_search(l).expect("label present") as u32)
            .collect();
        let mut totals = vec![0u32; classes.len()];
        for &d in &dense {
            totals[d as usize] += 1;
        }
        let mut impossible = false;
        let mut jobs = Vec::with_capacity(classes.len());
        for (ci, &cls) in classes.iter().enumerate() {
            let t = totals[ci];
            let mut v = Vec::with_capacity(t as usize);
            for k in 1..=t {
                let mut release = 0u32;
                let mut deadline = n as u32;
                for r in &rules {
                    if r.class != cls {
                        continue;
                    }
                    if r.max < k {
                        release = release.max(r.window);
                    }
                    if r.min >= k {
                        deadline = deadline.min(r.window);
                    }
                }
                if release >= deadline {
                    impossible = true;
                }
                v.push((release, deadline));
            }
            // A floor demanding more of the class than exists.
            if rules.iter().any(|r| r.class == cls && r.min > t) {
                impossible = true;
            }
            jobs.push(v);
        }
        Ok(ClassConstraints {
            labels,
            rules,
            classes,
            dense,
            totals,
            jobs,
            impossible,
        })
    }

    /// The per-candidate class labels (length = domain size).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The validated rules, in construction order.
    pub fn rules(&self) -> &[WindowRule] {
        &self.rules
    }

    /// Domain size the constraints describe.
    pub fn domain_size(&self) -> usize {
        self.labels.len()
    }

    /// `true` iff at least one permutation satisfies every rule
    /// (earliest-deadline-first simulation — exact for prefix windows).
    pub fn is_feasible(&self) -> bool {
        self.feasible_from(0, &vec![0u32; self.classes.len()])
    }

    fn dense_of_class(&self, class: u32) -> usize {
        self.classes.binary_search(&class).expect("validated class")
    }

    /// Does `order` (a full ranking) satisfy every rule?
    ///
    /// # Errors
    /// [`AggregateError::DomainMismatch`] on a size mismatch,
    /// [`AggregateError::NotFullRanking`] if `order` has ties.
    pub fn satisfied(&self, order: &BucketOrder) -> Result<bool, AggregateError> {
        if order.len() != self.labels.len() {
            return Err(AggregateError::DomainMismatch {
                expected: self.labels.len(),
                found: order.len(),
            });
        }
        let perm = order
            .as_permutation()
            .ok_or(AggregateError::NotFullRanking)?;
        Ok(self.check_perm(&perm))
    }

    fn check_perm(&self, perm: &[ElementId]) -> bool {
        let mut placed = vec![0u32; self.classes.len()];
        for (pos, &e) in perm.iter().enumerate() {
            placed[self.dense[e as usize] as usize] += 1;
            let w = (pos + 1) as u32;
            for r in &self.rules {
                if r.window == w {
                    let cnt = placed[self.dense_of_class(r.class)];
                    if cnt < r.min || cnt > r.max {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Earliest-deadline-first feasibility: can positions `t0..n` be
    /// filled given `placed` candidates of each class already sit in
    /// the prefix? Exact for unit jobs with release times + deadlines.
    fn feasible_from(&self, t0: usize, placed: &[u32]) -> bool {
        if self.impossible {
            return false;
        }
        let n = self.labels.len();
        let mut heads: Vec<u32> = placed.to_vec();
        for t in t0..n {
            let mut best: Option<(u32, usize)> = None;
            for (c, jobs) in self.jobs.iter().enumerate() {
                let h = heads[c] as usize;
                if h >= jobs.len() {
                    continue;
                }
                let (release, deadline) = jobs[h];
                if release as usize > t {
                    continue;
                }
                if best.is_none_or(|(bd, _)| deadline < bd) {
                    best = Some((deadline, c));
                }
            }
            match best {
                // Every candidate of every class with work left is
                // cap-blocked: this slot can never be filled.
                None => return false,
                Some((deadline, c)) => {
                    if deadline as usize <= t {
                        return false;
                    }
                    heads[c] += 1;
                }
            }
        }
        true
    }

    /// Reorders `order` (a full ranking) into the feasible permutation
    /// closest to it in the greedy sense: positions are filled
    /// left-to-right with the earliest `order`-candidate whose
    /// placement keeps the remaining schedule feasible. Already-feasible
    /// inputs are returned unchanged.
    ///
    /// # Errors
    /// [`AggregateError::InfeasibleConstraints`] when no permutation
    /// satisfies the rules; also the errors of
    /// [`ClassConstraints::satisfied`].
    pub fn repair(&self, order: &BucketOrder) -> Result<BucketOrder, AggregateError> {
        let n = self.labels.len();
        if order.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: order.len(),
            });
        }
        let perm = order
            .as_permutation()
            .ok_or(AggregateError::NotFullRanking)?;
        if self.check_perm(&perm) {
            return Ok(order.clone());
        }
        let mut placed = vec![0u32; self.classes.len()];
        if !self.feasible_from(0, &placed) {
            return Err(AggregateError::InfeasibleConstraints);
        }
        let mut used = vec![false; n];
        let mut out: Vec<ElementId> = Vec::with_capacity(n);
        for t in 0..n {
            let mut chosen = None;
            for &e in &perm {
                if used[e as usize] {
                    continue;
                }
                let c = self.dense[e as usize] as usize;
                let (release, _) = self.jobs[c][placed[c] as usize];
                if release as usize > t {
                    continue;
                }
                placed[c] += 1;
                if self.feasible_from(t + 1, &placed) {
                    chosen = Some(e);
                    break;
                }
                placed[c] -= 1;
            }
            match chosen {
                Some(e) => {
                    used[e as usize] = true;
                    out.push(e);
                }
                // Unreachable when feasible_from(0) held, but keep the
                // typed escape rather than trusting the proof.
                None => return Err(AggregateError::InfeasibleConstraints),
            }
        }
        Ok(BucketOrder::from_permutation(&out).expect("repair emits a permutation"))
    }
}

// ---------------------------------------------------------------------
// Exact solver
// ---------------------------------------------------------------------

/// Exact minmax aggregation (optimal **full ranking** minimizing the
/// maximum per-voter `Kprof ×2` distance) by branch and bound, with
/// optional [`ClassConstraints`] pruned in-search. Returns
/// `(optimum, max_cost_x2, stats)`.
///
/// The bound: each voter's distance is at least its cost on the fixed
/// prefix plus the number of still-unordered pairs it ties (a tied pair
/// costs 1 whichever way the output orders it); a node dies when the
/// max over voters of that bound reaches the incumbent. Warm-started by
/// [`minmax_aggregate`].
///
/// # Errors
/// [`AggregateError::DomainTooLarge`] beyond [`MAX_MINMAX_N`];
/// [`AggregateError::InfeasibleConstraints`] when no permutation
/// satisfies the rules; [`AggregateError::DomainMismatch`] when the
/// constraint labels don't cover the profile's domain; plus the errors
/// of [`MinMaxObjective::build`].
pub fn minmax_optimal_bb(
    inputs: &[BucketOrder],
    constraints: Option<&ClassConstraints>,
) -> Result<(BucketOrder, u64, BbStats), AggregateError> {
    let n = check_inputs(inputs)?;
    if n > MAX_MINMAX_N {
        return Err(AggregateError::DomainTooLarge {
            n,
            max: MAX_MINMAX_N,
        });
    }
    if n == 0 {
        return Ok((
            BucketOrder::trivial(0),
            0,
            BbStats {
                nodes: 0,
                pruned: 0,
            },
        ));
    }
    // The warm start also validates the constraints and proves
    // feasibility (or raises the typed infeasibility error).
    let (warm, warm_cost) = minmax_aggregate(inputs, constraints, DEFAULT_SEED)?;
    let obj = MinMaxObjective::build(inputs)?;
    let m = inputs.len();

    // Per-voter pair costs: cv[(v*n + a)*n + b] = cost of a ahead of b.
    let mut cv = vec![0u8; m * n * n];
    for v in 0..m {
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    cv[(v * n + a) * n + b] =
                        obj.pair_cost_x2(v, a as ElementId, b as ElementId) as u8;
                }
            }
        }
    }
    // Per-voter LB: every pair the voter ties costs 1 either way.
    let tied_lb: Vec<u64> = (0..m)
        .map(|v| {
            let mut t = 0u64;
            for a in 0..n {
                for b in a + 1..n {
                    if cv[(v * n + a) * n + b] == 1 {
                        t += 1;
                    }
                }
            }
            t
        })
        .collect();

    let mut search = Search {
        n,
        m,
        cv: &cv,
        cons: constraints,
        prefix: Vec::with_capacity(n),
        in_prefix: vec![false; n],
        cost: vec![0u64; m],
        tied_lb,
        placed: vec![0u32; constraints.map_or(0, |c| c.classes.len())],
        best_perm: warm.as_permutation().expect("heuristic emits full rankings"),
        best_cost: warm_cost,
        stats: BbStats {
            nodes: 0,
            pruned: 0,
        },
    };
    search.dfs();
    let order = BucketOrder::from_permutation(&search.best_perm).expect("permutation preserved");
    Ok((order, search.best_cost, search.stats))
}

struct Search<'a> {
    n: usize,
    m: usize,
    cv: &'a [u8],
    cons: Option<&'a ClassConstraints>,
    prefix: Vec<ElementId>,
    in_prefix: Vec<bool>,
    /// Per-voter cost of the fixed prefix.
    cost: Vec<u64>,
    /// Per-voter tied pairs wholly inside the unplaced set.
    tied_lb: Vec<u64>,
    /// Per-dense-class prefix counts (empty when unconstrained).
    placed: Vec<u32>,
    best_perm: Vec<ElementId>,
    best_cost: u64,
    stats: BbStats,
}

impl Search<'_> {
    fn dfs(&mut self) {
        self.stats.nodes += 1;
        let depth = self.prefix.len();
        if depth == self.n {
            let total = self.cost.iter().copied().max().unwrap_or(0);
            if total < self.best_cost {
                self.best_cost = total;
                self.best_perm = self.prefix.clone();
            }
            return;
        }
        // Candidate next elements with their per-voter increments,
        // cheapest optimistic bound first.
        let mut cands: Vec<(u64, ElementId, Vec<u64>, Vec<u64>)> = Vec::new();
        for e in 0..self.n {
            if self.in_prefix[e] {
                continue;
            }
            if let Some(cc) = self.cons {
                if self.cap_blocked(cc, e, depth) {
                    self.stats.pruned += 1;
                    continue;
                }
            }
            let mut inc = vec![0u64; self.m];
            let mut tdrop = vec![0u64; self.m];
            let mut bound = 0u64;
            for v in 0..self.m {
                let row = &self.cv[(v * self.n + e) * self.n..(v * self.n + e + 1) * self.n];
                for (u, &c) in row.iter().enumerate() {
                    if u == e || self.in_prefix[u] {
                        continue;
                    }
                    inc[v] += c as u64;
                    if c == 1 {
                        tdrop[v] += 1;
                    }
                }
                bound = bound.max(self.cost[v] + inc[v] + self.tied_lb[v] - tdrop[v]);
            }
            if bound >= self.best_cost {
                self.stats.pruned += 1;
                continue;
            }
            cands.push((bound, e as ElementId, inc, tdrop));
        }
        cands.sort_unstable_by_key(|&(b, e, _, _)| (b, e));
        for (bound, e, inc, tdrop) in cands {
            // Recheck: the incumbent may have improved since collection.
            if bound >= self.best_cost {
                self.stats.pruned += 1;
                continue;
            }
            for v in 0..self.m {
                self.cost[v] += inc[v];
                self.tied_lb[v] -= tdrop[v];
            }
            self.prefix.push(e);
            self.in_prefix[e as usize] = true;
            let mut ok = true;
            if let Some(cc) = self.cons {
                self.placed[cc.dense[e as usize] as usize] += 1;
                ok = self.windows_ok(cc, depth + 1);
            }
            if ok {
                self.dfs();
            } else {
                self.stats.pruned += 1;
            }
            if let Some(cc) = self.cons {
                self.placed[cc.dense[e as usize] as usize] -= 1;
            }
            self.in_prefix[e as usize] = false;
            self.prefix.pop();
            for v in 0..self.m {
                self.cost[v] -= inc[v];
                self.tied_lb[v] += tdrop[v];
            }
        }
    }

    /// Would placing `e` at position `depth` bust a cap whose window is
    /// still open?
    fn cap_blocked(&self, cc: &ClassConstraints, e: usize, depth: usize) -> bool {
        let cls = cc.labels[e];
        let placed = self.placed[cc.dense[e] as usize];
        cc.rules
            .iter()
            .any(|r| r.class == cls && r.window as usize > depth && placed + 1 > r.max)
    }

    /// After extending the prefix to length `w`: every rule whose
    /// window just closed must hold exactly, and every still-open floor
    /// must remain reachable in its remaining slots.
    fn windows_ok(&self, cc: &ClassConstraints, w: usize) -> bool {
        for r in &cc.rules {
            let placed = self.placed[cc.dense_of_class(r.class)];
            let rw = r.window as usize;
            if rw == w {
                if placed < r.min || placed > r.max {
                    return false;
                }
            } else if rw > w && (r.min.saturating_sub(placed)) as usize > rw - w {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------

/// KwikSort restarts scored by the **max**-cost objective (instead of
/// the Kemeny sum of [`crate::kwiksort::kwiksort_best_of`]), each
/// repaired to feasibility first when constraints are given. Returns
/// the best candidate and its max cost ×2.
///
/// # Errors
/// As [`minmax_aggregate`].
pub fn minmax_kwiksort_best_of(
    inputs: &[BucketOrder],
    seed: u64,
    restarts: usize,
    constraints: Option<&ClassConstraints>,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    check_constraints(n, constraints)?;
    let tally = ProfileTally::build(inputs)?;
    let obj = MinMaxObjective::build(inputs)?;
    let mut best: Option<(BucketOrder, u64)> = None;
    for i in 0..restarts.max(1) {
        let mut cand = kwiksort_with_tally(&tally, seed.wrapping_add(i as u64))?;
        if let Some(cc) = constraints {
            cand = cc.repair(&cand)?;
        }
        let c = obj.max_cost_x2(&cand)?;
        if best.as_ref().is_none_or(|&(_, bc)| c < bc) {
            best = Some((cand, c));
        }
    }
    Ok(best.expect("restarts ≥ 1"))
}

/// Minmax-aware local search: repeatedly finds the current **argmax
/// voter** and applies the adjacent swap that most reduces the
/// objective `(max cost, total cost)` lexicographically, preferring
/// swaps that move the argmax voter closer; falls back to any improving
/// swap when the argmax voter has none. Swaps that would violate a
/// constraint window are never taken, so feasibility is preserved.
/// Returns the local optimum and its max cost ×2.
///
/// # Errors
/// [`AggregateError::NotFullRanking`] if `candidate` has ties; plus the
/// errors of [`minmax_aggregate`]. An infeasible `candidate` is
/// repaired first.
pub fn minmax_local_search(
    candidate: &BucketOrder,
    inputs: &[BucketOrder],
    constraints: Option<&ClassConstraints>,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    check_constraints(n, constraints)?;
    if candidate.len() != n {
        return Err(AggregateError::DomainMismatch {
            expected: n,
            found: candidate.len(),
        });
    }
    let start = match constraints {
        Some(cc) => cc.repair(candidate)?,
        None => candidate.clone(),
    };
    let perm = start
        .as_permutation()
        .ok_or(AggregateError::NotFullRanking)?;
    let obj = MinMaxObjective::build(inputs)?;
    let (out, cost) = local_search_perm(&obj, constraints, perm);
    Ok((
        BucketOrder::from_permutation(&out).expect("local search permutes"),
        cost,
    ))
}

/// The full heuristic pipeline the server's `MinMaxAgg` opcode runs:
/// KwikSort restarts plus refined-input seeds (each voter's own ranking
/// with ties broken by id — by the triangle inequality the best of
/// these is within 3× of the optimum), every candidate repaired and
/// locally searched, best max-cost wins. Deterministic given `seed`
/// (the wire handler fixes [`DEFAULT_SEED`]).
///
/// # Errors
/// [`AggregateError::NoInputs`] / [`AggregateError::DomainMismatch`] on
/// a bad profile, [`AggregateError::DomainMismatch`] when constraint
/// labels don't cover the domain,
/// [`AggregateError::InfeasibleConstraints`] when no permutation
/// satisfies the rules.
pub fn minmax_aggregate(
    inputs: &[BucketOrder],
    constraints: Option<&ClassConstraints>,
    seed: u64,
) -> Result<(BucketOrder, u64), AggregateError> {
    let n = check_inputs(inputs)?;
    check_constraints(n, constraints)?;
    if let Some(cc) = constraints {
        if !cc.is_feasible() {
            return Err(AggregateError::InfeasibleConstraints);
        }
    }
    if n == 0 {
        return Ok((BucketOrder::trivial(0), 0));
    }
    let tally = ProfileTally::build(inputs)?;
    let obj = MinMaxObjective::build(inputs)?;
    let m = inputs.len();

    let mut seeds: Vec<Vec<ElementId>> = Vec::new();
    for i in 0..DEFAULT_RESTARTS {
        let cand = kwiksort_with_tally(&tally, seed.wrapping_add(i as u64))?;
        seeds.push(cand.as_permutation().expect("kwiksort emits full"));
    }
    // Refined inputs: up to 16 voters, evenly spaced so an outlier
    // anywhere in the profile stays represented.
    let take = m.min(16);
    for i in 0..take {
        let v = i * m / take;
        let mut perm: Vec<ElementId> = (0..n as ElementId).collect();
        perm.sort_by_key(|&e| (obj.bucket_of(v, e), e));
        seeds.push(perm);
    }

    let mut best: Option<(Vec<ElementId>, u64)> = None;
    for perm in seeds {
        let perm = match constraints {
            Some(cc) => {
                let order = BucketOrder::from_permutation(&perm).expect("seed permutes");
                cc.repair(&order)?
                    .as_permutation()
                    .expect("repair emits full")
            }
            None => perm,
        };
        let (out, cost) = local_search_perm(&obj, constraints, perm);
        if best.as_ref().is_none_or(|&(_, bc)| cost < bc) {
            best = Some((out, cost));
        }
    }
    let (perm, cost) = best.expect("at least one seed");
    Ok((
        BucketOrder::from_permutation(&perm).expect("best seed permutes"),
        cost,
    ))
}

fn check_constraints(
    n: usize,
    constraints: Option<&ClassConstraints>,
) -> Result<(), AggregateError> {
    if let Some(cc) = constraints {
        if cc.labels.len() != n {
            return Err(AggregateError::DomainMismatch {
                expected: n,
                found: cc.labels.len(),
            });
        }
    }
    Ok(())
}

/// The hill climb shared by the public heuristics. `perm` must already
/// be feasible; `(max, total)` strictly decreases every accepted move,
/// so termination is immediate from well-ordering.
fn local_search_perm(
    obj: &MinMaxObjective,
    cons: Option<&ClassConstraints>,
    mut perm: Vec<ElementId>,
) -> (Vec<ElementId>, u64) {
    let n = obj.n;
    let m = obj.m;
    let mut costs: Vec<u64> = (0..m).map(|v| obj.voter_perm_cost_x2(v, &perm)).collect();
    if n < 2 {
        let maxc = costs.iter().copied().max().unwrap_or(0);
        return (perm, maxc);
    }
    loop {
        let mut cur_max = 0u64;
        let mut argmax = 0usize;
        let mut cur_total = 0u64;
        for (v, &c) in costs.iter().enumerate() {
            cur_total += c;
            if c > cur_max {
                cur_max = c;
                argmax = v;
            }
        }
        // Evaluate one adjacent swap in O(m) via the stored deltas.
        let eval = |p: usize| -> (u64, u64) {
            let (a, b) = (perm[p], perm[p + 1]);
            let mut new_max = 0u64;
            let mut new_total = 0u64;
            for (v, &c) in costs.iter().enumerate() {
                let nc = (c as i64 + obj.swap_delta_x2(v, a, b)) as u64;
                new_total += nc;
                new_max = new_max.max(nc);
            }
            (new_max, new_total)
        };
        let mut best_move: Option<(u64, u64, usize)> = None;
        // Pass 1: only swaps that move the argmax voter closer.
        for p in 0..n - 1 {
            if obj.swap_delta_x2(argmax, perm[p], perm[p + 1]) >= 0 {
                continue;
            }
            if !swap_allowed(cons, &perm, p) {
                continue;
            }
            let (nm, nt) = eval(p);
            if (nm, nt) < (cur_max, cur_total)
                && best_move.is_none_or(|(bm, bt, _)| (nm, nt) < (bm, bt))
            {
                best_move = Some((nm, nt, p));
            }
        }
        // Pass 2: any improving swap, when the argmax voter offers none.
        if best_move.is_none() {
            for p in 0..n - 1 {
                if !swap_allowed(cons, &perm, p) {
                    continue;
                }
                let (nm, nt) = eval(p);
                if (nm, nt) < (cur_max, cur_total)
                    && best_move.is_none_or(|(bm, bt, _)| (nm, nt) < (bm, bt))
                {
                    best_move = Some((nm, nt, p));
                }
            }
        }
        match best_move {
            Some((_, _, p)) => {
                let (a, b) = (perm[p], perm[p + 1]);
                for (v, c) in costs.iter_mut().enumerate() {
                    *c = (*c as i64 + obj.swap_delta_x2(v, a, b)) as u64;
                }
                perm.swap(p, p + 1);
            }
            None => break,
        }
    }
    let maxc = costs.iter().copied().max().unwrap_or(0);
    (perm, maxc)
}

/// An adjacent swap at `(p, p+1)` only changes class counts in the
/// prefix of length `p+1`; check exactly the rules whose window closes
/// there.
fn swap_allowed(cons: Option<&ClassConstraints>, perm: &[ElementId], p: usize) -> bool {
    let Some(cc) = cons else { return true };
    let (a, b) = (perm[p], perm[p + 1]);
    if cc.dense[a as usize] == cc.dense[b as usize] {
        return true;
    }
    let w = (p + 1) as u32;
    for r in &cc.rules {
        if r.window != w {
            continue;
        }
        let cd = cc.dense_of_class(r.class) as u32;
        let mut cnt = perm[..p]
            .iter()
            .filter(|&&e| cc.dense[e as usize] == cd)
            .count() as u32;
        if cc.dense[b as usize] == cd {
            cnt += 1;
        }
        if cnt < r.min || cnt > r.max {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{total_cost_x2, AggMetric};

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    /// Brute-force minmax optimum by permutation enumeration.
    fn brute_force(
        inputs: &[BucketOrder],
        cons: Option<&ClassConstraints>,
    ) -> Option<(Vec<ElementId>, u64)> {
        let n = inputs[0].len();
        let obj = MinMaxObjective::build(inputs).unwrap();
        let mut best: Option<(Vec<ElementId>, u64)> = None;
        let mut perm: Vec<ElementId> = (0..n as ElementId).collect();
        permute(&mut perm, 0, &mut |p| {
            if let Some(cc) = cons {
                if !cc.check_perm(p) {
                    return;
                }
            }
            let c = (0..inputs.len())
                .map(|v| obj.voter_perm_cost_x2(v, p))
                .max()
                .unwrap_or(0);
            if best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                best = Some((p.to_vec(), c));
            }
        });
        best
    }

    fn permute(perm: &mut Vec<ElementId>, k: usize, f: &mut impl FnMut(&[ElementId])) {
        if k == perm.len() {
            f(perm);
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            permute(perm, k + 1, f);
            perm.swap(k, i);
        }
    }

    fn lcg_profile(seed: u64, n: usize, m: usize, levels: u64) -> Vec<BucketOrder> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
        let mut next = move |md: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % md
        };
        (0..m)
            .map(|_| {
                let ks: Vec<i64> = (0..n).map(|_| next(levels) as i64).collect();
                BucketOrder::from_keys(&ks)
            })
            .collect()
    }

    #[test]
    fn objective_matches_cost_module_per_voter() {
        let inputs = lcg_profile(1, 6, 5, 4);
        let obj = MinMaxObjective::build(&inputs).unwrap();
        let cand = keys(&[2, 0, 1, 3, 5, 4]);
        let costs = obj.costs_x2(&cand).unwrap();
        for (v, s) in inputs.iter().enumerate() {
            let direct =
                total_cost_x2(AggMetric::KProf, &cand, std::slice::from_ref(s)).unwrap();
            assert_eq!(costs[v], direct, "voter {v}");
        }
    }

    #[test]
    fn swap_delta_agrees_with_rescan() {
        let inputs = lcg_profile(2, 7, 4, 3);
        let obj = MinMaxObjective::build(&inputs).unwrap();
        let mut perm: Vec<ElementId> = vec![3, 1, 6, 0, 2, 5, 4];
        for p in 0..perm.len() - 1 {
            let before: Vec<u64> = (0..4).map(|v| obj.voter_perm_cost_x2(v, &perm)).collect();
            let (a, b) = (perm[p], perm[p + 1]);
            perm.swap(p, p + 1);
            for (v, &prior) in before.iter().enumerate() {
                let after = obj.voter_perm_cost_x2(v, &perm);
                assert_eq!(
                    after as i64 - prior as i64,
                    obj.swap_delta_x2(v, a, b),
                    "voter {v} swap {p}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_unconstrained() {
        for seed in 0..8u64 {
            let n = 4 + (seed % 3) as usize;
            let inputs = lcg_profile(seed, n, 4, 3);
            let (_, bf) = brute_force(&inputs, None).unwrap();
            let (order, cost, _) = minmax_optimal_bb(&inputs, None).unwrap();
            assert_eq!(cost, bf, "seed {seed}");
            let obj = MinMaxObjective::build(&inputs).unwrap();
            assert_eq!(obj.max_cost_x2(&order).unwrap(), cost);
        }
    }

    #[test]
    fn unanimous_profile_has_zero_minmax() {
        let s = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
        let inputs = vec![s.clone(); 5];
        let (order, cost, _) = minmax_optimal_bb(&inputs, None).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(order, s);
    }

    #[test]
    fn constraint_validation_is_typed() {
        let labels = vec![0u32, 0, 1, 1];
        let rule = |window, class, min, max| WindowRule {
            window,
            class,
            min,
            max,
        };
        assert!(matches!(
            ClassConstraints::new(labels.clone(), vec![rule(0, 0, 0, 0)]),
            Err(AggregateError::InvalidConstraintWindow { index: 0, .. })
        ));
        assert!(matches!(
            ClassConstraints::new(labels.clone(), vec![rule(5, 0, 0, 1)]),
            Err(AggregateError::InvalidConstraintWindow { .. })
        ));
        assert!(matches!(
            ClassConstraints::new(labels.clone(), vec![rule(2, 0, 2, 1)]),
            Err(AggregateError::InvalidConstraintBounds { .. })
        ));
        assert!(matches!(
            ClassConstraints::new(labels.clone(), vec![rule(2, 0, 1, 3)]),
            Err(AggregateError::InvalidConstraintBounds { .. })
        ));
        assert!(matches!(
            ClassConstraints::new(labels, vec![rule(2, 9, 0, 1)]),
            Err(AggregateError::UnknownClass { index: 0, class: 9 })
        ));
    }

    #[test]
    fn repair_fast_path_and_feasibility() {
        // Two classes interleaved; first two slots must hold one of each.
        let labels = vec![0u32, 0, 1, 1];
        let cc = ClassConstraints::new(
            labels,
            vec![WindowRule {
                window: 2,
                class: 0,
                min: 1,
                max: 1,
            }],
        )
        .unwrap();
        assert!(cc.is_feasible());
        let good = BucketOrder::from_permutation(&[0, 2, 1, 3]).unwrap();
        assert!(cc.satisfied(&good).unwrap());
        assert_eq!(cc.repair(&good).unwrap(), good);
        let bad = BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap();
        assert!(!cc.satisfied(&bad).unwrap());
        let fixed = cc.repair(&bad).unwrap();
        assert!(cc.satisfied(&fixed).unwrap());
        // Greedy keeps the earliest legal prefix of the input order.
        assert_eq!(fixed.as_permutation().unwrap(), vec![0, 2, 1, 3]);
    }

    #[test]
    fn infeasible_rule_sets_are_detected() {
        // Every candidate is class 0 but the first slot may hold none.
        let cc = ClassConstraints::new(
            vec![0u32; 3],
            vec![WindowRule {
                window: 1,
                class: 0,
                min: 0,
                max: 0,
            }],
        )
        .unwrap();
        assert!(!cc.is_feasible());
        let id = BucketOrder::from_permutation(&[0, 1, 2]).unwrap();
        assert_eq!(
            cc.repair(&id),
            Err(AggregateError::InfeasibleConstraints)
        );
        let inputs = vec![id.clone(), id];
        assert_eq!(
            minmax_aggregate(&inputs, Some(&cc), 1).unwrap_err(),
            AggregateError::InfeasibleConstraints
        );
        assert_eq!(
            minmax_optimal_bb(&inputs, Some(&cc)).unwrap_err(),
            AggregateError::InfeasibleConstraints
        );
    }

    #[test]
    fn constrained_exact_matches_constrained_brute_force() {
        for seed in 0..6u64 {
            let n = 5;
            let inputs = lcg_profile(seed + 20, n, 4, 3);
            let labels: Vec<u32> = (0..n as u32).map(|e| e % 2).collect();
            let cc = ClassConstraints::new(
                labels,
                vec![
                    WindowRule {
                        window: 2,
                        class: 1,
                        min: 1,
                        max: 2,
                    },
                    WindowRule {
                        window: 4,
                        class: 0,
                        min: 1,
                        max: 3,
                    },
                ],
            )
            .unwrap();
            let (_, bf) = brute_force(&inputs, Some(&cc)).unwrap();
            let (order, cost, _) = minmax_optimal_bb(&inputs, Some(&cc)).unwrap();
            assert_eq!(cost, bf, "seed {seed}");
            assert!(cc.satisfied(&order).unwrap());
        }
    }

    #[test]
    fn heuristics_bound_the_exact_optimum() {
        for seed in 0..6u64 {
            let inputs = lcg_profile(seed + 40, 6, 5, 4);
            let (_, exact, _) = minmax_optimal_bb(&inputs, None).unwrap();
            let (order, heur) = minmax_aggregate(&inputs, None, 7).unwrap();
            assert!(heur >= exact, "seed {seed}: heuristic beat exact?");
            assert!(heur <= 2 * exact.max(1), "seed {seed}: {heur} > 2·{exact}");
            let obj = MinMaxObjective::build(&inputs).unwrap();
            assert_eq!(obj.max_cost_x2(&order).unwrap(), heur);
        }
    }

    #[test]
    fn local_search_never_worsens_and_kwiksort_scores_by_max() {
        let inputs = lcg_profile(9, 8, 6, 5);
        let obj = MinMaxObjective::build(&inputs).unwrap();
        let (kw, kw_cost) = minmax_kwiksort_best_of(&inputs, 3, 8, None).unwrap();
        assert_eq!(obj.max_cost_x2(&kw).unwrap(), kw_cost);
        let (ls, ls_cost) = minmax_local_search(&kw, &inputs, None).unwrap();
        assert!(ls_cost <= kw_cost);
        assert_eq!(obj.max_cost_x2(&ls).unwrap(), ls_cost);
    }

    #[test]
    fn outlier_voter_drops_the_max_below_the_sum_optimum() {
        // Nine agreeing voters + one full reversal: the Kemeny (sum)
        // optimum is the majority ranking, whose max cost is the full
        // 2·C(6,2) = 30 paid by the outlier; the minmax optimum meets
        // the outlier halfway.
        let majority = BucketOrder::from_permutation(&[0, 1, 2, 3, 4, 5]).unwrap();
        let outlier = BucketOrder::from_permutation(&[5, 4, 3, 2, 1, 0]).unwrap();
        let mut inputs = vec![majority.clone(); 9];
        inputs.push(outlier);
        let obj = MinMaxObjective::build(&inputs).unwrap();
        let sum_opt_max = obj.max_cost_x2(&majority).unwrap();
        assert_eq!(sum_opt_max, 30);
        let (_, minmax_cost, _) = minmax_optimal_bb(&inputs, None).unwrap();
        assert!(minmax_cost < sum_opt_max);
        assert_eq!(minmax_cost, 16, "balance point of a 6-element reversal");
    }

    #[test]
    fn errors() {
        assert!(minmax_aggregate(&[], None, 0).is_err());
        let huge = BucketOrder::trivial(MAX_MINMAX_N + 1);
        assert!(matches!(
            minmax_optimal_bb(std::slice::from_ref(&huge), None),
            Err(AggregateError::DomainTooLarge { .. })
        ));
        let cc = ClassConstraints::new(vec![0, 0], vec![]).unwrap();
        let inputs = [BucketOrder::trivial(3)];
        assert!(matches!(
            minmax_aggregate(&inputs, Some(&cc), 0),
            Err(AggregateError::DomainMismatch {
                expected: 3,
                found: 2
            })
        ));
        let empty = BucketOrder::trivial(0);
        let (o, c, _) = minmax_optimal_bb(std::slice::from_ref(&empty), None).unwrap();
        assert!(o.is_empty());
        assert_eq!(c, 0);
    }
}
