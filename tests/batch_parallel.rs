//! Regression tests for the prepared-kernel batch matrix: both the
//! sequential and the scoped-thread parallel engines must reproduce a
//! naive double loop over the **direct** metric functions bit-for-bit,
//! for every metric and every thread count, on random profiles.

use bucketrank::metrics::batch::{
    pairwise_matrix, pairwise_matrix_parallel, pairwise_matrix_parallel_with,
    pairwise_matrix_with, BatchMetric,
};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

#[test]
fn prepared_matrix_matches_naive_double_loop_random_profiles() {
    check(
        "prepared_matrix_matches_naive_double_loop_random_profiles",
        gen::vec_of(gen::bucket_order(10, 4), 2..=9),
        |profile| {
            for metric in BatchMetric::ALL {
                let naive = pairwise_matrix_with(profile, |a, b| metric.direct(a, b)).unwrap();
                let seq = pairwise_matrix(profile, metric).unwrap();
                assert_eq!(naive, seq, "{} sequential", metric.name());
                for threads in [2usize, 3, 8] {
                    let par = pairwise_matrix_parallel(profile, metric, threads).unwrap();
                    assert_eq!(naive, par, "{}, threads = {threads}", metric.name());
                }
            }
        },
    );
}

#[test]
fn prepared_matrix_matches_naive_double_loop_wide_profile() {
    // More rankings than 8 threads can chunk evenly, and a thread count
    // exceeding the pair count — both chunking edge cases.
    let profile: Vec<BucketOrder> = (0..17)
        .map(|i| {
            let keys: Vec<i64> = (0..20).map(|e| ((e * (i + 3) + 2 * i) % 7) as i64).collect();
            BucketOrder::from_keys(&keys)
        })
        .collect();
    for metric in BatchMetric::ALL {
        let naive = pairwise_matrix_with(&profile, |a, b| metric.direct(a, b)).unwrap();
        let naive_par =
            pairwise_matrix_parallel_with(&profile, |a, b| metric.direct(a, b), 8).unwrap();
        assert_eq!(naive, naive_par, "{} naive parallel", metric.name());
        let seq = pairwise_matrix(&profile, metric).unwrap();
        assert_eq!(naive, seq, "{} sequential", metric.name());
        for threads in [2usize, 3, 8, 64] {
            let par = pairwise_matrix_parallel(&profile, metric, threads).unwrap();
            assert_eq!(naive, par, "{}, threads = {threads}", metric.name());
        }
    }
}

#[test]
fn parallel_matrix_error_matches_sequential() {
    // Mismatched domains: both paths must report the failure (the
    // parallel path checks domains up front, before spawning).
    let p = vec![
        BucketOrder::trivial(5),
        BucketOrder::trivial(5),
        BucketOrder::trivial(5),
        BucketOrder::trivial(6),
    ];
    assert!(pairwise_matrix(&p, BatchMetric::KProfX2).is_err());
    for threads in [2usize, 3, 8] {
        assert!(pairwise_matrix_parallel(&p, BatchMetric::KProfX2, threads).is_err());
    }
}
