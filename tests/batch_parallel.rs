//! Regression tests for the scoped-thread batch matrix: the parallel
//! path must reproduce the sequential path bit-for-bit for every metric
//! and every thread count, on random profiles.

use bucketrank::metrics::batch::{pairwise_matrix, pairwise_matrix_parallel};
use bucketrank::metrics::{footrule, hausdorff, kendall, MetricsError};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

type DistFn = fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError>;

const METRICS: [(&str, DistFn); 4] = [
    ("kprof_x2", kendall::kprof_x2),
    ("fprof_x2", footrule::fprof_x2),
    ("khaus", hausdorff::khaus),
    ("fhaus", hausdorff::fhaus),
];

#[test]
fn parallel_matrix_matches_sequential_random_profiles() {
    check(
        "parallel_matrix_matches_sequential_random_profiles",
        gen::vec_of(gen::bucket_order(10, 4), 2..=9),
        |profile| {
            for (name, d) in METRICS {
                let seq = pairwise_matrix(profile, d).unwrap();
                for threads in [2usize, 3, 8] {
                    let par = pairwise_matrix_parallel(profile, d, threads).unwrap();
                    assert_eq!(seq, par, "{name}, threads = {threads}");
                }
            }
        },
    );
}

#[test]
fn parallel_matrix_matches_sequential_wide_profile() {
    // More rankings than 8 threads can chunk evenly, and a thread count
    // exceeding the pair count — both chunking edge cases.
    let profile: Vec<BucketOrder> = (0..17)
        .map(|i| {
            let keys: Vec<i64> = (0..20).map(|e| ((e * (i + 3) + 2 * i) % 7) as i64).collect();
            BucketOrder::from_keys(&keys)
        })
        .collect();
    for (name, d) in METRICS {
        let seq = pairwise_matrix(&profile, d).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = pairwise_matrix_parallel(&profile, d, threads).unwrap();
            assert_eq!(seq, par, "{name}, threads = {threads}");
        }
    }
}

#[test]
fn parallel_matrix_error_matches_sequential() {
    // Mismatched domains: both paths must report the failure (the
    // parallel path checks domains up front, before spawning).
    let p = vec![
        BucketOrder::trivial(5),
        BucketOrder::trivial(5),
        BucketOrder::trivial(5),
        BucketOrder::trivial(6),
    ];
    assert!(pairwise_matrix(&p, kendall::kprof_x2).is_err());
    for threads in [2usize, 3, 8] {
        assert!(pairwise_matrix_parallel(&p, kendall::kprof_x2, threads).is_err());
    }
}
