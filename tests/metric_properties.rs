//! Property-based invariants across the metrics crate: metric axioms on
//! random bucket orders, reductions to the classical full-ranking
//! metrics, profile identities, and the top-k compatibility results of
//! Appendix A.3.

use bucketrank::core::refine::star;
use bucketrank::metrics::footrule::{canonical_location, footrule_location_x2, fprof_x2};
use bucketrank::metrics::kendall::{kavg_x2, kprof_x2};
use bucketrank::metrics::profile::{fprof_x2_via_profiles, kprof_x2_via_profiles};
use bucketrank::metrics::related::{goodman_kruskal_gamma, kendall_tau_b};
use bucketrank::metrics::{full, hausdorff, pairs};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

#[test]
fn metric_axioms_random_triples() {
    check(
        "metric_axioms_random_triples",
        gen::order_triple(10, 4),
        |(a, b, c)| {
            for d in [kprof_x2, fprof_x2, hausdorff::khaus, hausdorff::fhaus] {
                let ab = d(a, b).unwrap();
                let ba = d(b, a).unwrap();
                assert_eq!(ab, ba, "symmetry");
                assert_eq!(d(a, a).unwrap(), 0, "regularity");
                assert_eq!(ab == 0, a == b, "positivity");
                assert!(
                    d(a, c).unwrap() <= ab + d(b, c).unwrap(),
                    "triangle inequality"
                );
            }
        },
    );
}

#[test]
fn reductions_on_full_rankings() {
    check(
        "reductions_on_full_rankings",
        gen::full_pair(9),
        |(a, b)| {
            let k = full::kendall(a, b).unwrap();
            let f = full::footrule(a, b).unwrap();
            assert_eq!(kprof_x2(a, b).unwrap(), 2 * k);
            assert_eq!(fprof_x2(a, b).unwrap(), 2 * f);
            assert_eq!(hausdorff::khaus(a, b).unwrap(), k);
            assert_eq!(hausdorff::fhaus(a, b).unwrap(), f);
            assert_eq!(kavg_x2(a, b).unwrap(), 2 * k);
            // Diaconis–Graham.
            assert!(k <= f && (f <= 2 * k || k == 0));
        },
    );
}

#[test]
fn profile_identities() {
    check("profile_identities", gen::order_pair(8, 3), |(a, b)| {
        assert_eq!(
            kprof_x2(a, b).unwrap(),
            kprof_x2_via_profiles(a, b).unwrap()
        );
        assert_eq!(
            fprof_x2(a, b).unwrap(),
            fprof_x2_via_profiles(a, b).unwrap()
        );
    });
}

#[test]
fn kavg_decomposition() {
    check("kavg_decomposition", gen::order_pair(10, 3), |(a, b)| {
        let c = pairs::pair_counts(a, b).unwrap();
        assert_eq!(kavg_x2(a, b).unwrap(), kprof_x2(a, b).unwrap() + c.tied_both);
    });
}

#[test]
fn correlation_coefficients_bounded() {
    check(
        "correlation_coefficients_bounded",
        gen::order_pair(10, 4),
        |(a, b)| {
            if let Some(g) = goodman_kruskal_gamma(a, b).unwrap() {
                assert!((-1.0..=1.0).contains(&g));
            }
            if let Some(t) = kendall_tau_b(a, b).unwrap() {
                assert!((-1.0..=1.0).contains(&t));
            }
        },
    );
}

#[test]
fn star_operator_invariants() {
    check(
        "star_operator_invariants",
        gen::order_pair(8, 3),
        |(sigma, tau)| {
            let r = star(tau, sigma).unwrap();
            // τ∗σ refines σ and is unchanged by re-refining with τ.
            assert!(bucketrank::core::refine::is_refinement(&r, sigma).unwrap());
            assert_eq!(star(tau, &r).unwrap(), r);
            // Refining cannot increase the distance budget beyond the ties:
            // the refined order agrees with σ on all σ-untied pairs, so the
            // only Kprof cost between them comes from broken ties.
            let c = pairs::pair_counts(&r, sigma).unwrap();
            assert_eq!(c.discordant, 0);
        },
    );
}

#[test]
fn reverse_is_isometry() {
    check("reverse_is_isometry", gen::order_pair(9, 4), |(a, b)| {
        // d(σᴿ, τᴿ) = d(σ, τ) for all four metrics.
        let (ar, br) = (a.reverse(), b.reverse());
        assert_eq!(kprof_x2(a, b).unwrap(), kprof_x2(&ar, &br).unwrap());
        assert_eq!(fprof_x2(a, b).unwrap(), fprof_x2(&ar, &br).unwrap());
        assert_eq!(
            hausdorff::khaus(a, b).unwrap(),
            hausdorff::khaus(&ar, &br).unwrap()
        );
        assert_eq!(
            hausdorff::fhaus(a, b).unwrap(),
            hausdorff::fhaus(&ar, &br).unwrap()
        );
    });
}

#[test]
fn location_parameter_identity_on_random_top_k() {
    use bucketrank::workloads::random::random_top_k;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;
    let mut rng = Pcg32::seed_from_u64(3);
    for _ in 0..200 {
        use bucketrank_testkit::rng::Rng;
        let n = rng.gen_range(2..=12);
        let k = rng.gen_range(1..n.max(2)).min(n);
        let a = random_top_k(&mut rng, n, k);
        let b = random_top_k(&mut rng, n, k);
        let ell = canonical_location(n, k);
        assert_eq!(
            footrule_location_x2(&a, &b, k, ell).unwrap(),
            fprof_x2(&a, &b).unwrap(),
            "n={n} k={k}"
        );
    }
}

#[test]
fn kavg_equals_kprof_on_topk_over_active_domain() {
    // Two top-k lists whose bottom buckets are singletons... more
    // directly: when no pair is tied in both (e.g. disjoint tie sets),
    // Kavg = Kprof exactly.
    let a = BucketOrder::from_buckets(4, vec![vec![0, 1], vec![2], vec![3]]).unwrap();
    let b = BucketOrder::from_buckets(4, vec![vec![0], vec![1], vec![2, 3]]).unwrap();
    assert_eq!(kavg_x2(&a, &b).unwrap(), kprof_x2(&a, &b).unwrap());
}
