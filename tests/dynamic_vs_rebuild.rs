//! Differential update-oracle suite for the streaming profile engine
//! (`aggregate::dynamic`): random insert/remove/replace edit scripts
//! from `testkit::gen::edit_script_with_degenerates` (empty-profile,
//! single-voter, all-voters-removed and duplicate-voter trajectories),
//! asserting after **every step** that the dynamic tally, median-rank
//! vector and majority digraph are byte-identical to a from-scratch
//! rebuild over the live voters. The dirty-row contract is pinned
//! exactly: rows outside a drained set must be untouched in both
//! matrix directions, and refreshing only the drained rows must leave
//! every row-local consumer (majority digraph, MC4 transition matrix)
//! equal to a full rebuild. Unknown-voter edits must be typed errors
//! that leave the engine byte-identical — never a panic or underflow.

use bucketrank::access::medrank::top_k_from_medians;
use bucketrank::aggregate::condorcet::MajorityGraph;
use bucketrank::aggregate::dynamic::{DynamicProfile, VoterId};
use bucketrank::aggregate::markov::{mc4_transition_matrix, refresh_mc4_rows};
use bucketrank::aggregate::median::{
    aggregate_full, aggregate_top_k, aggregate_to_type, median_order, median_positions,
};
use bucketrank::aggregate::tally::ProfileTally;
use bucketrank::aggregate::{AggregateError, MedianPolicy};
use bucketrank::{BucketOrder, TypeSeq};
use bucketrank_testkit::gen::EditOp;
use bucketrank_testkit::prelude::*;

/// The degenerate-heavy edit-script stream shared by the properties.
fn scripts() -> impl Gen<Value = Vec<EditOp>> {
    gen::edit_script_with_degenerates(3..=12, 6, 3)
}

/// Domain size of a script: read off its first pushed ranking (every
/// generated script contains at least one push).
fn script_domain(script: &[EditOp]) -> usize {
    script
        .iter()
        .find_map(|op| match op {
            EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
            EditOp::Remove(_) => None,
        })
        .expect("scripts always embed a ranking")
}

/// Applies one op to the engine and a mirrored live-voter list,
/// asserting the engine's per-edit contract (returned rankings, typed
/// errors on empty, untouched state on error).
fn apply_op(dp: &mut DynamicProfile, live: &mut Vec<(VoterId, BucketOrder)>, op: &EditOp) {
    match op {
        EditOp::Push(r) => {
            let id = dp.push_voter(r.clone()).unwrap();
            live.push((id, r.clone()));
        }
        EditOp::Remove(i) => {
            if live.is_empty() {
                let before = dp.clone();
                let ghost = VoterId::from_raw(u64::MAX);
                assert_eq!(
                    dp.remove_voter(ghost),
                    Err(AggregateError::UnknownVoter { id: u64::MAX })
                );
                assert_eq!(dp.generation(), before.generation());
                assert_eq!(dp.tally(), before.tally());
            } else {
                let k = i % live.len();
                let (id, expected) = live.remove(k);
                let returned = dp.remove_voter(id).unwrap();
                assert_eq!(returned, expected, "removal must return the stored ranking");
            }
        }
        EditOp::Replace(i, r) => {
            if live.is_empty() {
                let ghost = VoterId::from_raw(u64::MAX);
                assert_eq!(
                    dp.replace_voter(ghost, r.clone()),
                    Err(AggregateError::UnknownVoter { id: u64::MAX })
                );
            } else {
                let k = i % live.len();
                let old = dp.replace_voter(live[k].0, r.clone()).unwrap();
                assert_eq!(old, live[k].1, "replace must return the previous ranking");
                live[k].1 = r.clone();
            }
        }
    }
}

/// The full oracle: dynamic state must be byte-identical to a
/// from-scratch rebuild over the live voters.
fn assert_matches_rebuild(
    dp: &DynamicProfile,
    live: &[(VoterId, BucketOrder)],
    policy: MedianPolicy,
) {
    let inputs: Vec<BucketOrder> = live.iter().map(|(_, r)| r.clone()).collect();
    assert_eq!(dp.voters(), inputs.len());
    if inputs.is_empty() {
        assert!(dp.tally().weights_x2().iter().all(|&x| x == 0));
        assert!(dp.tally().strict_counts().iter().all(|&x| x == 0));
        assert!(matches!(dp.snapshot(), Err(AggregateError::NoInputs)));
        assert!(matches!(
            dp.median_positions(),
            Err(AggregateError::NoInputs)
        ));
        return;
    }
    let rebuilt = ProfileTally::build(&inputs).unwrap();
    assert_eq!(dp.tally(), &rebuilt, "tally diverged from rebuild");
    let expected_medians = median_positions(&inputs, policy).unwrap();
    assert_eq!(
        dp.median_positions().unwrap(),
        expected_medians,
        "medians diverged from rebuild"
    );
    let snap = dp.snapshot().unwrap();
    assert_eq!(snap.tally(), &rebuilt);
    assert_eq!(snap.median_positions(), &expected_medians[..]);
    assert_eq!(
        MajorityGraph::from_tally(snap.tally()),
        MajorityGraph::from_tally(&rebuilt),
        "majority digraph diverged from rebuild"
    );
}

#[test]
fn dynamic_state_matches_rebuild_after_every_step() {
    check(
        "dynamic_state_matches_rebuild_after_every_step",
        scripts(),
        |script| {
            let n = script_domain(script);
            for policy in [MedianPolicy::Lower, MedianPolicy::Upper] {
                let mut dp = DynamicProfile::new(n, policy);
                let mut live: Vec<(VoterId, BucketOrder)> = Vec::new();
                for op in script {
                    apply_op(&mut dp, &mut live, op);
                    assert_matches_rebuild(&dp, &live, policy);
                }
            }
        },
    );
}

#[test]
fn dirty_rows_are_precise_and_refresh_consumers_to_a_full_rebuild() {
    check(
        "dirty_rows_are_precise_and_refresh_consumers_to_a_full_rebuild",
        scripts(),
        |script| {
            let n = script_domain(script);
            let mut dp = DynamicProfile::new(n, MedianPolicy::Lower);
            let mut live: Vec<(VoterId, BucketOrder)> = Vec::new();
            // Row-local consumers maintained purely through the
            // dirty-row hooks from here on (both are well-defined on
            // the zero-voter tally).
            let mut graph = MajorityGraph::from_tally(dp.tally());
            let mut mc4 = mc4_transition_matrix(dp.tally());
            dp.take_dirty();
            for op in script {
                let prev = dp.clone();
                apply_op(&mut dp, &mut live, op);
                let dirty = dp.take_dirty();
                // Precision: a clean row is untouched in both matrix
                // directions and keeps its median.
                for a in 0..n as u32 {
                    if dirty.contains(a) {
                        continue;
                    }
                    for b in 0..n as u32 {
                        assert_eq!(dp.tally().strict_count(a, b), prev.tally().strict_count(a, b));
                        assert_eq!(dp.tally().strict_count(b, a), prev.tally().strict_count(b, a));
                        assert_eq!(dp.tally().weight_x2(a, b), prev.tally().weight_x2(a, b));
                        assert_eq!(dp.tally().weight_x2(b, a), prev.tally().weight_x2(b, a));
                    }
                    if dp.voters() > 0 && prev.voters() > 0 {
                        assert_eq!(
                            dp.median_positions().unwrap()[a as usize],
                            prev.median_positions().unwrap()[a as usize],
                            "clean row {a} moved its median"
                        );
                    }
                }
                // Sufficiency: refreshing exactly the drained rows
                // brings every consumer to a full rebuild.
                graph.refresh_rows(dp.tally(), dirty.rows()).unwrap();
                refresh_mc4_rows(dp.tally(), &mut mc4, dirty.rows()).unwrap();
                assert_eq!(graph, MajorityGraph::from_tally(dp.tally()));
                assert_eq!(mc4, mc4_transition_matrix(dp.tally()));
            }
        },
    );
}

#[test]
fn snapshot_aggregates_match_the_batch_pipeline() {
    check(
        "snapshot_aggregates_match_the_batch_pipeline",
        gen::profile_with_degenerates(1..=7, 8, 3),
        |profile| {
            for policy in [MedianPolicy::Lower, MedianPolicy::Upper] {
                let (dp, ids) = DynamicProfile::from_profile(profile, policy).unwrap();
                assert_eq!(ids.len(), profile.len());
                let snap = dp.snapshot().unwrap();
                let n = profile[0].len();
                assert_eq!(snap.full_ranking(), aggregate_full(profile, policy).unwrap());
                assert_eq!(snap.median_order(), median_order(profile, policy).unwrap());
                for k in [0, 1, n / 2, n] {
                    assert_eq!(
                        snap.top_k(k).unwrap(),
                        aggregate_top_k(profile, k, policy).unwrap()
                    );
                    // The access-layer serving path agrees: the k ids
                    // with smallest medians, in top-k bucket order.
                    let served = top_k_from_medians(snap.median_positions(), k).unwrap();
                    let from_buckets: Vec<u32> = snap
                        .top_k(k)
                        .unwrap()
                        .buckets()
                        .iter()
                        .take(k)
                        .flat_map(|b| b.iter().copied())
                        .collect();
                    assert_eq!(served, from_buckets);
                }
                let alpha = TypeSeq::full(n);
                assert_eq!(
                    snap.to_type(&alpha).unwrap(),
                    aggregate_to_type(profile, &alpha, policy).unwrap()
                );
            }
        },
    );
}

#[test]
fn unknown_voter_edits_never_underflow_or_mutate() {
    let keys = |k: &[i64]| BucketOrder::from_keys(k);
    let mut dp = DynamicProfile::new(4, MedianPolicy::Lower);
    let a = dp.push_voter(keys(&[1, 2, 3, 4])).unwrap();
    let b = dp.push_voter(keys(&[2, 1, 1, 2])).unwrap();
    dp.remove_voter(a).unwrap();
    let reference = dp.clone();
    // Stale handle, fabricated handle, and double-remove: all typed.
    for ghost in [a, VoterId::from_raw(999)] {
        assert_eq!(
            dp.remove_voter(ghost),
            Err(AggregateError::UnknownVoter { id: ghost.raw() })
        );
        assert_eq!(
            dp.replace_voter(ghost, keys(&[1, 1, 1, 1])),
            Err(AggregateError::UnknownVoter { id: ghost.raw() })
        );
    }
    assert_eq!(dp.generation(), reference.generation());
    assert_eq!(dp.tally(), reference.tally());
    assert_eq!(dp.voter_ids(), vec![b]);
    assert_eq!(
        dp.median_positions().unwrap(),
        reference.median_positions().unwrap()
    );
    // The engine still works after the failed edits.
    dp.remove_voter(b).unwrap();
    assert_eq!(dp.voters(), 0);
    assert!(dp.tally().weights_x2().iter().all(|&x| x == 0));
}
