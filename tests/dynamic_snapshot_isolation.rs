//! Snapshot-isolation regression tests for the streaming engine
//! (alongside `tests/batch_parallel.rs`): held `DynamicProfile`
//! snapshots are immutable owned views, so readers on other threads
//! must never observe a partial update while the owning thread edits
//! the engine — every invariant of a consistent epoch (complementary
//! ×2 weights, weight/strict consistency, median vector frozen at the
//! epoch) must hold on the view throughout, and the view must compare
//! byte-identical to its capture before, during and after the churn.

use bucketrank::aggregate::dynamic::{DynamicProfile, DynamicSnapshot};
use bucketrank::aggregate::MedianPolicy;
use bucketrank::BucketOrder;
use std::thread;

fn keys(k: &[i64]) -> BucketOrder {
    BucketOrder::from_keys(k)
}

/// Every pair-invariant a consistent tally epoch satisfies; a torn
/// read (a snapshot observing half an update) would violate one.
fn assert_consistent_epoch(snap: &DynamicSnapshot) {
    let t = snap.tally();
    let n = t.len();
    let m2 = 2 * t.voters() as u32;
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a == b {
                continue;
            }
            assert_eq!(
                t.weight_x2(a, b) + t.weight_x2(b, a),
                m2,
                "complementarity broken: pair ({a},{b})"
            );
            assert!(t.strict_count(a, b) + t.strict_count(b, a) <= t.voters() as u32);
            assert_eq!(
                t.weight_x2(a, b),
                t.voters() as u32 + t.strict_count(a, b) - t.strict_count(b, a),
                "w2/strict identity broken: pair ({a},{b})"
            );
        }
    }
    assert_eq!(snap.median_positions().len(), n);
}

#[test]
fn held_snapshots_never_observe_concurrent_edits() {
    let n = 6;
    let mut dp = DynamicProfile::new(n, MedianPolicy::Upper);
    let mut ids = Vec::new();
    for i in 0..4i64 {
        ids.push(dp.push_voter(keys(&[i, 2, 5 - i, 1, i % 3, 4])).unwrap());
    }
    let snap = dp.snapshot().unwrap();
    let reference = snap.clone();
    thread::scope(|s| {
        let snap_ref = &snap;
        let reference_ref = &reference;
        let reader = s.spawn(move || {
            // DynamicSnapshot is Sync: this closure borrows it across
            // the thread boundary while the main thread keeps editing.
            for _ in 0..500 {
                assert_consistent_epoch(snap_ref);
                assert_eq!(snap_ref, reference_ref, "held view changed under edits");
                assert_eq!(snap_ref.tally().voters(), 4);
            }
        });
        // Churn the engine hard while the reader holds the old epoch.
        for round in 0..200i64 {
            let id = dp.push_voter(keys(&[round % 5, 1, 2, 3, 4, round % 7])).unwrap();
            dp.replace_voter(ids[(round % 4) as usize], keys(&[round % 3, round % 4, 1, 2, 3, 4]))
                .unwrap();
            dp.remove_voter(id).unwrap();
        }
        reader.join().unwrap();
    });
    // The held view is still the captured epoch, bit for bit.
    assert_eq!(snap, reference);
    assert_eq!(snap.tally().voters(), 4);
    // The engine moved on: a fresh snapshot is a later generation.
    let fresh = dp.snapshot().unwrap();
    assert!(fresh.generation() > snap.generation());
    assert_consistent_epoch(&fresh);
}

#[test]
fn snapshots_can_move_to_other_threads() {
    let mut dp = DynamicProfile::new(3, MedianPolicy::Lower);
    dp.push_voter(keys(&[1, 2, 3])).unwrap();
    let snap = dp.snapshot().unwrap();
    let expected = snap.clone();
    // DynamicSnapshot is Send: hand the owned view to another thread
    // while the engine keeps editing here.
    let handle = std::thread::spawn(move || {
        assert_consistent_epoch(&snap);
        snap
    });
    dp.push_voter(keys(&[3, 2, 1])).unwrap();
    let returned = handle.join().unwrap();
    assert_eq!(returned, expected);
    assert_eq!(dp.voters(), 2);
}

#[test]
fn generation_counts_every_successful_edit_exactly_once() {
    let mut dp = DynamicProfile::new(3, MedianPolicy::Lower);
    assert_eq!(dp.generation(), 0);
    let a = dp.push_voter(keys(&[1, 2, 3])).unwrap();
    let b = dp.push_voter(keys(&[2, 1, 3])).unwrap();
    assert_eq!(dp.generation(), 2);
    dp.replace_voter(a, keys(&[3, 2, 1])).unwrap();
    assert_eq!(dp.generation(), 3);
    dp.remove_voter(b).unwrap();
    assert_eq!(dp.generation(), 4);
    // Failed edits never advance the epoch.
    assert!(dp.remove_voter(b).is_err());
    assert!(dp.push_voter(BucketOrder::trivial(5)).is_err());
    assert_eq!(dp.generation(), 4);
    assert_eq!(dp.snapshot().unwrap().generation(), 4);
}
