//! Loopback differential suite for the TCP service: random edit
//! scripts (`testkit::gen::edit_script_with_degenerates`, the same
//! stream that drives the in-process engine's update oracle) are
//! replayed over a real socket, and every reply — edits, reads, and
//! typed errors — must be **byte-identical** to the locally-encoded
//! response computed from a mirrored in-process `DynamicProfile`.
//! Plus the CI smoke pass: one round trip per request type and a
//! graceful, fully-drained shutdown.

use bucketrank::aggregate::dynamic::{DynamicProfile, VoterId};
use bucketrank::aggregate::minmax::{self, ClassConstraints, WindowRule};
use bucketrank::aggregate::{AggregateError, MedianPolicy};
use bucketrank::metrics::prepared::{
    fhaus_x2_prepared, fprof_x2_prepared, khaus_x2_prepared, kprof_x2_prepared, PreparedRanking,
};
use bucketrank::server::proto::{ErrorCode, MetricKind, Request, Response, WirePolicy, WireRule};
use bucketrank::server::{Client, Server, ServerConfig};
use bucketrank::BucketOrder;
use bucketrank_testkit::gen::EditOp;
use bucketrank_testkit::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The degenerate-heavy edit-script stream shared with the in-process
/// differential suite (`tests/dynamic_vs_rebuild.rs`).
fn scripts() -> impl Gen<Value = Vec<EditOp>> {
    gen::edit_script_with_degenerates(3..=12, 6, 3)
}

/// Domain size of a script: read off its first embedded ranking.
fn script_domain(script: &[EditOp]) -> usize {
    script
        .iter()
        .find_map(|op| match op {
            EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
            EditOp::Remove(_) => None,
        })
        .expect("scripts always embed a ranking")
}

/// The service's error mapping, mirrored locally so error replies are
/// byte-predictable too (`service::agg_error` is the server side of
/// this contract).
fn expected_agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::NoInputs => ErrorCode::NoVoters,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        AggregateError::InvalidK { .. } => ErrorCode::InvalidK,
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::TooManyVoters { .. } => ErrorCode::TooManyVoters,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// The service's empty-session read reply.
fn expected_no_voters(session: &str) -> Response {
    Response::Error {
        code: ErrorCode::NoVoters,
        message: format!("session {session:?} has no live voters"),
    }
}

fn pair_metric_x2(metric: MetricKind, a: &BucketOrder, b: &BucketOrder) -> Result<u64, bucketrank::metrics::MetricsError> {
    let pa = PreparedRanking::new(a);
    let pb = PreparedRanking::new(b);
    match metric {
        MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
        MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
        MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
        MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
    }
}

/// Issues `req` and asserts the raw reply bytes equal the encoding of
/// the locally-predicted response.
fn expect_bytes(client: &mut Client, req: &Request, expected: &Response) {
    let raw = client.call_raw(req).expect("transport");
    assert_eq!(
        raw,
        expected.encode(),
        "reply to {req:?} diverged from the in-process mirror ({expected:?})"
    );
}

#[test]
fn replies_are_byte_identical_to_the_in_process_mirror() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let case = AtomicUsize::new(0);

    check(
        "replies_are_byte_identical_to_the_in_process_mirror",
        scripts(),
        |script| {
            let seq = case.fetch_add(1, Ordering::Relaxed);
            let n = script_domain(script);
            let session = format!("diff-{seq}");
            let (wire_policy, policy) = if seq.is_multiple_of(2) {
                (WirePolicy::Lower, MedianPolicy::Lower)
            } else {
                (WirePolicy::Upper, MedianPolicy::Upper)
            };
            let mut client = Client::connect(addr).expect("connect");
            expect_bytes(
                &mut client,
                &Request::CreateSession {
                    name: session.clone(),
                    n: n as u32,
                    policy: wire_policy,
                },
                &Response::SessionCreated,
            );

            // The mirror: the same engine the server hosts, fed the
            // same edits, so voter ids and every derived value align.
            let mut mirror = DynamicProfile::new(n, policy);
            let mut live: Vec<(u64, BucketOrder)> = Vec::new();
            let candidate =
                BucketOrder::from_keys(&(0..n as i64).collect::<Vec<i64>>());

            for (step, op) in script.iter().enumerate() {
                // --- the edit, byte-compared including typed errors --
                match op {
                    EditOp::Push(r) => {
                        let expected = match mirror.push_voter(r.clone()) {
                            Ok(id) => {
                                live.push((id.raw(), r.clone()));
                                Response::VoterPushed { voter: id.raw() }
                            }
                            Err(e) => expected_agg_error(&e),
                        };
                        expect_bytes(
                            &mut client,
                            &Request::PushVoter {
                                session: session.clone(),
                                ranking: r.clone(),
                            },
                            &expected,
                        );
                    }
                    EditOp::Remove(i) => {
                        let target = if live.is_empty() {
                            u64::MAX
                        } else {
                            let k = i % live.len();
                            live.remove(k).0
                        };
                        let expected = match mirror.remove_voter(VoterId::from_raw(target)) {
                            Ok(_) => Response::VoterRemoved,
                            Err(e) => expected_agg_error(&e),
                        };
                        expect_bytes(
                            &mut client,
                            &Request::RemoveVoter {
                                session: session.clone(),
                                voter: target,
                            },
                            &expected,
                        );
                    }
                    EditOp::Replace(i, r) => {
                        let target = if live.is_empty() {
                            u64::MAX
                        } else {
                            let k = i % live.len();
                            live[k].1 = r.clone();
                            live[k].0
                        };
                        let expected =
                            match mirror.replace_voter(VoterId::from_raw(target), r.clone()) {
                                Ok(_) => Response::VoterReplaced,
                                Err(e) => expected_agg_error(&e),
                            };
                        expect_bytes(
                            &mut client,
                            &Request::ReplaceVoter {
                                session: session.clone(),
                                voter: target,
                                ranking: r.clone(),
                            },
                            &expected,
                        );
                    }
                }

                // --- every read type against the published snapshot --
                let snap = mirror.snapshot().ok();
                let expected_median = match &snap {
                    Some(s) => Response::Ranking {
                        order: s.median_order(),
                    },
                    None => expected_no_voters(&session),
                };
                expect_bytes(
                    &mut client,
                    &Request::MedianOrder {
                        session: session.clone(),
                    },
                    &expected_median,
                );

                // k sweeps 0..=n+1, so InvalidK crosses the wire too.
                let k = (step * 3) % (n + 2);
                let expected_topk = match &snap {
                    Some(s) => match s.top_k(k) {
                        Ok(order) => Response::Ranking { order },
                        Err(e) => expected_agg_error(&e),
                    },
                    None => expected_no_voters(&session),
                };
                expect_bytes(
                    &mut client,
                    &Request::TopK {
                        session: session.clone(),
                        k: k as u32,
                    },
                    &expected_topk,
                );

                let expected_kemeny = match &snap {
                    Some(s) => match s.tally().kemeny_cost_x2(&candidate) {
                        Ok(value) => Response::CostX2 { value },
                        Err(e) => expected_agg_error(&e),
                    },
                    None => expected_no_voters(&session),
                };
                expect_bytes(
                    &mut client,
                    &Request::KemenyCost {
                        session: session.clone(),
                        candidate: candidate.clone(),
                    },
                    &expected_kemeny,
                );

                // Pairwise metric between the oldest and newest live
                // voters; ghost ids on an empty profile stay typed.
                let metric = MetricKind::ALL[step % 4];
                let (va, vb) = match (live.first(), live.last()) {
                    (Some(a), Some(b)) => (a.0, b.0),
                    _ => (u64::MAX, u64::MAX),
                };
                let expected_pair = match (
                    live.iter().find(|(id, _)| *id == va),
                    live.iter().find(|(id, _)| *id == vb),
                ) {
                    (Some((_, a)), Some((_, b))) => match pair_metric_x2(metric, a, b) {
                        Ok(value) => Response::CostX2 { value },
                        Err(e) => Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        },
                    },
                    _ => expected_agg_error(&AggregateError::UnknownVoter { id: va }),
                };
                expect_bytes(
                    &mut client,
                    &Request::PairMetric {
                        session: session.clone(),
                        metric,
                        voter_a: va,
                        voter_b: vb,
                    },
                    &expected_pair,
                );

                // Minmax aggregation over the live voters, alternating
                // unconstrained and class-constrained calls. The
                // mirror's `live` list is in ascending-id order — the
                // same order the service clones rankings in — and both
                // sides run the pipeline at the fixed wire seed, so
                // the replies are byte-predictable.
                let rankings: Vec<BucketOrder> =
                    live.iter().map(|(_, r)| r.clone()).collect();
                let (labels, rules) = if step % 3 == 0 {
                    (Vec::new(), Vec::new())
                } else {
                    (
                        (0..n as u32).map(|e| e % 2).collect::<Vec<u32>>(),
                        vec![WireRule {
                            window: n as u32,
                            class: 0,
                            min: 0,
                            max: n as u32,
                        }],
                    )
                };
                let expected_minmax = if rankings.is_empty() {
                    expected_no_voters(&session)
                } else {
                    let cons = if labels.is_empty() {
                        None
                    } else {
                        let wr = rules
                            .iter()
                            .map(|r| WindowRule {
                                window: r.window,
                                class: r.class,
                                min: r.min,
                                max: r.max,
                            })
                            .collect();
                        Some(
                            ClassConstraints::new(labels.clone(), wr)
                                .expect("loopback rules are well-formed"),
                        )
                    };
                    match minmax::minmax_aggregate(
                        &rankings,
                        cons.as_ref(),
                        minmax::DEFAULT_SEED,
                    ) {
                        Ok((order, cost_x2)) => Response::RankingCost { order, cost_x2 },
                        Err(e) => expected_agg_error(&e),
                    }
                };
                expect_bytes(
                    &mut client,
                    &Request::MinMaxAgg {
                        session: session.clone(),
                        labels,
                        rules,
                    },
                    &expected_minmax,
                );
            }

            // A domain-mismatched push crosses the wire as the typed
            // error the engine raises in process.
            let bad = BucketOrder::trivial(n + 1);
            let expected = expected_agg_error(
                &mirror.push_voter(bad.clone()).expect_err("mismatched domain"),
            );
            expect_bytes(
                &mut client,
                &Request::PushVoter {
                    session: session.clone(),
                    ranking: bad,
                },
                &expected,
            );

            // A malformed constraint crosses the wire as the typed
            // error the constraint layer raises in process — unless
            // the session drained first, in which case the service's
            // empty-session check wins.
            let expected = if live.is_empty() {
                expected_no_voters(&session)
            } else {
                expected_agg_error(
                    &ClassConstraints::new(
                        vec![0u32; n],
                        vec![WindowRule {
                            window: 0,
                            class: 0,
                            min: 0,
                            max: 0,
                        }],
                    )
                    .expect_err("window 0 is malformed"),
                )
            };
            expect_bytes(
                &mut client,
                &Request::MinMaxAgg {
                    session: session.clone(),
                    labels: vec![0; n],
                    rules: vec![WireRule {
                        window: 0,
                        class: 0,
                        min: 0,
                        max: 0,
                    }],
                },
                &expected,
            );

            expect_bytes(
                &mut client,
                &Request::DropSession {
                    name: session.clone(),
                },
                &Response::SessionDropped,
            );
        },
    );

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert!(stats.requests > 0);
}

/// A legitimate client whose frame bytes straddle a network gap longer
/// than the server's internal read-poll interval must still be served:
/// the connection loop's resumable reader may not drop the bytes read
/// before the poll timeout fired (that desync would parse the frame's
/// tail as a fresh header).
#[test]
fn slow_frames_spanning_poll_timeouts_are_reassembled() {
    use std::io::Write;

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Three pings, each dribbled in three writes with pauses well past
    // the server's 50ms poll interval: mid-header, then mid-body.
    let body = Request::Ping.encode();
    let mut frame = (body.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&body);
    for _ in 0..3 {
        for chunk in [&frame[..2], &frame[2..5], &frame[5..]] {
            stream.write_all(chunk).expect("write chunk");
            stream.flush().expect("flush");
            std::thread::sleep(std::time::Duration::from_millis(120));
        }
        let reply = bucketrank::server::proto::read_frame(
            &mut stream,
            bucketrank::server::proto::DEFAULT_MAX_FRAME,
        )
        .expect("read reply");
        assert_eq!(Response::decode(&reply).expect("decode"), Response::Pong);
    }
    drop(stream);

    let stats = server.shutdown();
    assert_eq!(stats.requests, 3, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "every dribbled frame reassembled: {stats:?}");
}

#[test]
fn smoke_every_request_type_and_graceful_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");

    c.ping().expect("ping");
    c.create_session("smoke", 4, WirePolicy::Lower).expect("create");
    let keys = |k: &[i64]| BucketOrder::from_keys(k);
    let a = c.push_voter("smoke", &keys(&[1, 2, 3, 4])).expect("push");
    let b = c.push_voter("smoke", &keys(&[2, 2, 1, 1])).expect("push");
    c.replace_voter("smoke", a, &keys(&[4, 3, 2, 1])).expect("replace");
    let median = c.median_order("smoke").expect("median");
    assert_eq!(median.len(), 4);
    let top = c.top_k("smoke", 2).expect("top_k");
    assert_eq!(top.top_k_len(), Some(2));
    let cost = c.kemeny_cost_x2("smoke", &keys(&[1, 2, 3, 4])).expect("kemeny");
    // Against the mirror, not just "some number".
    let (dp, _) = DynamicProfile::from_profile(
        &[keys(&[4, 3, 2, 1]), keys(&[2, 2, 1, 1])],
        MedianPolicy::Lower,
    )
    .unwrap();
    assert_eq!(
        cost,
        dp.tally().kemeny_cost_x2(&keys(&[1, 2, 3, 4])).unwrap()
    );
    for metric in MetricKind::ALL {
        c.pair_metric_x2("smoke", metric, a, b).expect("pair metric");
    }
    // Minmax aggregation, unconstrained and constrained, against the
    // in-process pipeline at the same wire seed.
    let (mm, mm_cost) = c.minmax_agg("smoke", &[], &[]).expect("minmax");
    let expected = minmax::minmax_aggregate(
        &[keys(&[4, 3, 2, 1]), keys(&[2, 2, 1, 1])],
        None,
        minmax::DEFAULT_SEED,
    )
    .unwrap();
    assert_eq!((mm, mm_cost), expected);
    let rule = WireRule {
        window: 2,
        class: 1,
        min: 1,
        max: 2,
    };
    let (mmc, _) = c
        .minmax_agg("smoke", &[0, 0, 1, 1], &[rule])
        .expect("constrained minmax");
    // The constraint holds on the reply: at least one of elements 2, 3
    // inside the top-2 prefix.
    let perm = mmc.as_permutation().expect("constrained output is full");
    assert!(perm[..2].iter().any(|&e| e == 2 || e == 3));
    c.remove_voter("smoke", b).expect("remove");
    c.drop_session("smoke").expect("drop");

    // Wire shutdown: ack arrives, the drain completes, and the stats
    // cover everything this test sent.
    c.shutdown_server().expect("wire shutdown");
    server.wait_shutdown_requested();
    let stats = server.shutdown();
    assert!(stats.requests >= 15, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert_eq!(stats.rejected_busy, 0, "{stats:?}");
}
