//! Theorem 7: the four metrics `Kprof`, `Fprof`, `KHaus`, `FHaus` are in
//! one equivalence class, with the specific constants of inequalities
//! (4), (5), (6) — verified exhaustively on small domains and by
//! property-based testing on larger random bucket orders.
//!
//! Scaled-unit translations (x2 = twice paper units):
//!   (4) KHaus ≤ FHaus ≤ 2·KHaus
//!   (5) kprof_x2 ≤ fprof_x2 ≤ 2·kprof_x2
//!   (6) kprof_x2 ≤ 2·khaus and khaus ≤ kprof_x2

use bucketrank::core::consistent::all_bucket_orders;
use bucketrank::metrics::{footrule, hausdorff, kendall};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

fn assert_theorem7(a: &BucketOrder, b: &BucketOrder) {
    let kp2 = kendall::kprof_x2(a, b).unwrap();
    let fp2 = footrule::fprof_x2(a, b).unwrap();
    let kh = hausdorff::khaus(a, b).unwrap();
    let fh = hausdorff::fhaus(a, b).unwrap();

    // (4) KHaus ≤ FHaus ≤ 2 KHaus
    assert!(kh <= fh, "KHaus ≤ FHaus failed: {a:?} {b:?}");
    assert!(fh <= 2 * kh, "FHaus ≤ 2KHaus failed: {a:?} {b:?}");
    // (5) Kprof ≤ Fprof ≤ 2 Kprof
    assert!(kp2 <= fp2, "Kprof ≤ Fprof failed: {a:?} {b:?}");
    assert!(fp2 <= 2 * kp2, "Fprof ≤ 2Kprof failed: {a:?} {b:?}");
    // (6) Kprof ≤ KHaus ≤ 2 Kprof
    assert!(kp2 <= 2 * kh, "Kprof ≤ KHaus failed: {a:?} {b:?}");
    assert!(kh <= kp2, "KHaus ≤ 2Kprof failed: {a:?} {b:?}");

    // Derived: Fprof and FHaus within factor 4 of each other.
    assert!(fp2 <= 4 * 2 * fh || fh == 0);
    assert!(2 * fh <= 4 * fp2 || fp2 == 0);
}

#[test]
fn exhaustive_small_domains() {
    for n in 0..=4 {
        let orders = all_bucket_orders(n);
        for a in &orders {
            for b in &orders {
                assert_theorem7(a, b);
            }
        }
    }
}

#[test]
fn bound_tightness_witnesses() {
    // Fprof = 2·Kprof at (full, reverse) pairs of size 2:
    let id = BucketOrder::identity(2);
    let rev = id.reverse();
    assert_eq!(
        footrule::fprof_x2(&id, &rev).unwrap(),
        2 * kendall::kprof_x2(&id, &rev).unwrap()
    );
    // KHaus = 2·Kprof when one order ties everything (|U| = 0, |T| = C(n,2)):
    let triv = BucketOrder::trivial(4);
    let full = BucketOrder::identity(4);
    assert_eq!(
        2 * hausdorff::khaus(&triv, &full).unwrap(),
        2 * kendall::kprof_x2(&triv, &full).unwrap()
    );
    // Kprof = KHaus on full rankings (S = T = 0):
    let a = BucketOrder::from_permutation(&[1, 3, 0, 2]).unwrap();
    let b = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
    assert_eq!(
        kendall::kprof_x2(&a, &b).unwrap(),
        2 * hausdorff::khaus(&a, &b).unwrap()
    );
}

#[test]
fn random_pairs_n12() {
    check("random_pairs_n12", gen::order_pair(12, 5), |(a, b)| {
        assert_theorem7(a, b)
    });
}

#[test]
fn random_pairs_n40_many_ties() {
    check(
        "random_pairs_n40_many_ties",
        gen::order_pair(40, 3),
        |(a, b)| assert_theorem7(a, b),
    );
}

#[test]
fn random_pairs_n25_fine_grained() {
    check(
        "random_pairs_n25_fine_grained",
        gen::order_pair(25, 25),
        |(a, b)| assert_theorem7(a, b),
    );
}
