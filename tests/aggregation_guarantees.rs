//! The aggregation approximation guarantees of Section 6, checked against
//! exact optima on small domains:
//!
//! * Theorem 9 / Corollary 30 — median projection to a type is within 3×
//!   of the best partial ranking of that type (2× when all inputs share
//!   the type);
//! * Theorem 10 / Corollary 31 — the DP bucketing `f†` is within 2× of
//!   the best partial ranking (inputs being partial rankings);
//! * Theorem 11 / Corollary 32 — for full-ranking inputs, the median full
//!   ranking is within 2× of *any* aggregation.
//!
//! All costs use the `Fprof` (`Σ L1`) objective the theorems are stated
//! in; Theorem 7 transfers the factors to the other three metrics.

use bucketrank::aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank::aggregate::dp::aggregate_optimal_bucketing;
use bucketrank::aggregate::exact::{optimal_of_type, optimal_partial_ranking};
use bucketrank::aggregate::median::{aggregate_full, aggregate_to_type, aggregate_top_k};
use bucketrank::workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank::workloads::random::{random_bucket_order, random_full_ranking, random_of_type};
use bucketrank::{BucketOrder, MedianPolicy, TypeSeq};
use bucketrank_testkit::rng::Pcg32;
use bucketrank_testkit::rng::{Rng, SeedableRng};

const POLICIES: [MedianPolicy; 2] = [MedianPolicy::Lower, MedianPolicy::Upper];

#[test]
fn theorem9_top_k_within_factor_three() {
    let mut rng = Pcg32::seed_from_u64(9);
    for trial in 0..60 {
        let n = rng.gen_range(3..=6);
        let m = [3, 5, 7][trial % 3];
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_bucket_order(&mut rng, n)).collect();
        for k in 1..=n {
            let alpha = TypeSeq::top_k(n, k).unwrap();
            let (_, opt) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            for policy in POLICIES {
                let med = aggregate_top_k(&inputs, k, policy).unwrap();
                let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
                assert!(
                    cost <= 3 * opt,
                    "trial {trial} k={k}: {cost} > 3·{opt} for {inputs:?}"
                );
            }
        }
    }
}

#[test]
fn corollary30_arbitrary_types_within_factor_three() {
    let mut rng = Pcg32::seed_from_u64(30);
    for trial in 0..40 {
        let n = rng.gen_range(3..=6);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_bucket_order(&mut rng, n)).collect();
        for alpha in TypeSeq::all_types(n) {
            let (_, opt) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            let med = aggregate_to_type(&inputs, &alpha, MedianPolicy::Lower).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
            assert!(
                cost <= 3 * opt,
                "trial {trial} type {alpha}: {cost} > 3·{opt}"
            );
        }
    }
}

#[test]
fn corollary30_same_type_inputs_within_factor_two() {
    // When every input has type α and the output type is α, the factor
    // improves to 2 (second part of Corollary 30).
    let mut rng = Pcg32::seed_from_u64(31);
    for _ in 0..40 {
        let n = rng.gen_range(3..=6);
        let alpha = {
            let types = TypeSeq::all_types(n);
            types[rng.gen_range(0..types.len())].clone()
        };
        let inputs: Vec<BucketOrder> = (0..5)
            .map(|_| random_of_type(&mut rng, n, &alpha))
            .collect();
        let (_, opt) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
        let med = aggregate_to_type(&inputs, &alpha, MedianPolicy::Lower).unwrap();
        let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
        assert!(cost <= 2 * opt, "type {alpha}: {cost} > 2·{opt}");
    }
}

#[test]
fn theorem10_dp_bucketing_within_factor_two() {
    let mut rng = Pcg32::seed_from_u64(10);
    for trial in 0..60 {
        let n = rng.gen_range(3..=6);
        let inputs: Vec<BucketOrder> =
            (0..[3, 4, 7][trial % 3]).map(|_| random_bucket_order(&mut rng, n)).collect();
        let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
        for policy in POLICIES {
            let fd = aggregate_optimal_bucketing(&inputs, policy).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &fd.order, &inputs).unwrap();
            assert!(cost <= 2 * opt, "trial {trial}: {cost} > 2·{opt}");
        }
    }
}

#[test]
fn theorem11_full_inputs_full_output_within_factor_two_of_anything() {
    let mut rng = Pcg32::seed_from_u64(11);
    for trial in 0..60 {
        let n = rng.gen_range(3..=6);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_full_ranking(&mut rng, n)).collect();
        // Optimum over ALL partial rankings, not just full ones.
        let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
        for policy in POLICIES {
            let med = aggregate_full(&inputs, policy).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
            assert!(cost <= 2 * opt, "trial {trial}: {cost} > 2·{opt}");
        }
    }
}

#[test]
fn equivalence_transfers_factor_to_other_metrics() {
    // Theorem 7 machinery: a median aggregate is a constant-factor
    // approximation under KProf/KHaus/FHaus too. The transferred constant
    // is 3·c₁·c₂ with the equivalence constants; conservatively assert 12
    // (Fprof within [1,2]× of Kprof, KHaus within [1/2,1]× of Fprof...).
    let mut rng = Pcg32::seed_from_u64(7);
    for _ in 0..30 {
        let n = rng.gen_range(3..=5);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_bucket_order(&mut rng, n)).collect();
        let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
        for metric in [AggMetric::KProf, AggMetric::KHaus, AggMetric::FHaus] {
            let (_, opt) = optimal_partial_ranking(&inputs, metric).unwrap();
            let cost = total_cost_x2(metric, &fd.order, &inputs).unwrap();
            assert!(
                cost <= 12 * opt.max(1),
                "{}: {cost} > 12·{opt}",
                metric.name()
            );
        }
    }
}

#[test]
fn mallows_profiles_behave() {
    // On realistic noisy-voter workloads the ratio is typically ≈ 1.
    let mut rng = Pcg32::seed_from_u64(77);
    let alpha = TypeSeq::new(vec![2, 2, 2]).unwrap();
    let model = MallowsWithTies::new(Mallows::new(6, 1.0), alpha);
    let mut worst: f64 = 0.0;
    for _ in 0..25 {
        let inputs = model.sample_profile(&mut rng, 5);
        let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
        let cost = total_cost_x2(AggMetric::FProf, &fd.order, &inputs).unwrap();
        let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
        worst = worst.max(cost as f64 / opt.max(1) as f64);
    }
    assert!(worst <= 2.0, "worst observed ratio {worst} exceeds the bound");
    assert!(worst < 1.6, "Mallows profiles should be nearly optimal, got {worst}");
}
