//! Heavy exhaustive sweeps, ignored by default. Run with:
//!
//! ```sh
//! cargo test --release --test exhaustive_heavy -- --ignored
//! ```
//!
//! These push the exhaustive verification one domain size beyond the
//! default suite (minutes, not seconds, in debug builds — hence opt-in).

use bucketrank::core::consistent::all_bucket_orders;
use bucketrank::metrics::hausdorff::{fhaus, fhaus_brute, khaus, khaus_brute};
use bucketrank::metrics::{footrule, kendall};
use bucketrank::BucketOrder;

#[test]
#[ignore = "exhaustive n = 5 sweep (541² pairs with brute-force Hausdorff)"]
fn hausdorff_brute_force_full_n5() {
    let orders = all_bucket_orders(5);
    assert_eq!(orders.len(), 541);
    for (i, a) in orders.iter().enumerate() {
        for b in &orders[i..] {
            assert_eq!(khaus(a, b).unwrap(), khaus_brute(a, b).unwrap());
            assert_eq!(fhaus(a, b).unwrap(), fhaus_brute(a, b).unwrap());
        }
    }
}

#[test]
#[ignore = "exhaustive n = 6 metric-equivalence sweep (4683² pairs)"]
fn equivalence_full_n6() {
    let orders = all_bucket_orders(6);
    assert_eq!(orders.len(), 4683);
    for a in &orders {
        for b in &orders {
            let kp2 = kendall::kprof_x2(a, b).unwrap();
            let fp2 = footrule::fprof_x2(a, b).unwrap();
            let kh = khaus(a, b).unwrap();
            let fh = fhaus(a, b).unwrap();
            assert!(kp2 <= fp2 && fp2 <= 2 * kp2);
            assert!(kh <= fh && fh <= 2 * kh);
            assert!(kp2 <= 2 * kh && kh <= kp2);
        }
    }
}

#[test]
#[ignore = "exhaustive n = 5 triangle-inequality sweep over 541³ triples"]
fn triangle_inequality_full_n5() {
    let orders = all_bucket_orders(5);
    // Precompute the Kprof matrix; triangle over all triples.
    let n = orders.len();
    let mut d = vec![0u64; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = kendall::kprof_x2(&orders[i], &orders[j]).unwrap();
        }
    }
    for i in 0..n {
        for j in 0..n {
            let dij = d[i * n + j];
            for k in 0..n {
                assert!(d[i * n + k] <= dij + d[j * n + k]);
            }
        }
    }
}

#[test]
#[ignore = "exhaustive DP verification over every half-unit score vector, n = 5, values ≤ 12"]
fn dp_exhaustive_n5() {
    use bucketrank::aggregate::dp::{optimal_bucketing, optimal_bucketing_brute};
    use bucketrank::Pos;
    let mut v = [0i64; 5];
    loop {
        let f: Vec<Pos> = v.iter().map(|&h| Pos::from_half_units(h)).collect();
        let a = optimal_bucketing(&f);
        let b = optimal_bucketing_brute(&f);
        assert_eq!(a.cost_x2, b.cost_x2, "f = {f:?}");
        let mut i = 0;
        loop {
            if i == v.len() {
                return;
            }
            v[i] += 1;
            if v[i] <= 12 {
                break;
            }
            v[i] = 0;
            i += 1;
        }
    }
}

#[test]
#[ignore = "exhaustive strong-optimality verification at n = 5 over all input triples of a pool"]
fn strong_optimality_pooled_n5() {
    use bucketrank::aggregate::strong::{aggregate_to_type_strong, is_projection_of};
    use bucketrank::{MedianPolicy, TypeSeq};
    // A pool of structurally diverse inputs; all triples.
    let pool: Vec<BucketOrder> = vec![
        BucketOrder::identity(5),
        BucketOrder::identity(5).reverse(),
        BucketOrder::trivial(5),
        BucketOrder::from_keys(&[1, 1, 2, 2, 3]),
        BucketOrder::from_keys(&[3, 2, 2, 1, 1]),
        BucketOrder::from_keys(&[2, 1, 3, 1, 2]),
        BucketOrder::top_k(5, &[4, 0]).unwrap(),
    ];
    let alpha = TypeSeq::top_k(5, 2).unwrap();
    for a in &pool {
        for b in &pool {
            for c in &pool {
                let inputs = vec![a.clone(), b.clone(), c.clone()];
                let s =
                    aggregate_to_type_strong(&inputs, &alpha, MedianPolicy::Lower).unwrap();
                assert!(is_projection_of(&s.output, &s.witness, &alpha).unwrap());
            }
        }
    }
}
