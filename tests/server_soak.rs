//! Readiness-loop soak (ignored by default; run via the CI heavy lane
//! or `cargo test --test server_soak -- --ignored`): thousands of
//! mostly-idle connections plus slow-dribble writers whose frames
//! straddle the event loop's poll intervals. Asserts zero protocol
//! errors, a **bounded thread count** (the worker pool and the event
//! thread only — no thread per connection), and a clean drain shutdown
//! that flushes and closes every connection.
//!
//! Size via `BUCKETRANK_SOAK_CONNS` (default 5000).

use bucketrank::server::proto::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME};
use bucketrank::server::{Client, Server, ServerConfig};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

fn soak_conns() -> usize {
    std::env::var("BUCKETRANK_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000)
}

/// Live threads in this process (Linux procfs; `None` elsewhere, which
/// skips the bounded-thread assertion but not the rest of the soak).
fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.count())
}

/// One blocking ping round trip over a raw stream.
fn ping_roundtrip(stream: &mut TcpStream) {
    write_frame(stream, &Request::Ping.encode(), DEFAULT_MAX_FRAME).expect("write ping");
    let reply = read_frame(stream, DEFAULT_MAX_FRAME).expect("read pong");
    assert_eq!(Response::decode(&reply).expect("decode"), Response::Pong);
}

#[test]
#[ignore = "soak: thousands of sockets; run in the CI heavy lane"]
fn idle_flood_and_dribblers_hold_with_bounded_threads() {
    let conns = soak_conns();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 128,
            max_connections: conns + 64,
            // The flood stays open for the whole test; don't let the
            // idle reaper race it.
            read_timeout: Duration::from_secs(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Thread baseline once the server is fully staffed: event thread +
    // workers. Nothing below may add a server-side thread.
    let baseline = thread_count();

    // --- the mostly-idle flood -----------------------------------
    let mut flood: Vec<TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect {i} of {conns} failed: {e}"));
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        flood.push(stream);
    }
    // Spot-check liveness across the flood: sparse pings prove idle
    // connections are still registered and readable.
    for i in (0..conns).step_by((conns / 16).max(1)) {
        ping_roundtrip(&mut flood[i]);
    }

    // --- slow-dribble writers straddling poll intervals ----------
    // Each dribbler splits every ping frame into three writes with
    // pauses longer than any event-loop sleep or cold-sweep interval,
    // so partial frames must survive many sweeps un-desynced.
    let dribblers: Vec<std::thread::JoinHandle<()>> = (0..8)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("dribbler connect");
            stream.set_nodelay(true).expect("nodelay");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            std::thread::Builder::new()
                .name(format!("soak-dribbler-{i}"))
                .spawn(move || {
                    let body = Request::Ping.encode();
                    let mut frame = (body.len() as u32).to_be_bytes().to_vec();
                    frame.extend_from_slice(&body);
                    for _ in 0..3 {
                        for chunk in [&frame[..2], &frame[2..5], &frame[5..]] {
                            stream.write_all(chunk).expect("dribble chunk");
                            stream.flush().expect("flush");
                            std::thread::sleep(Duration::from_millis(40));
                        }
                        let reply =
                            read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("dribbled reply");
                        assert_eq!(
                            Response::decode(&reply).expect("decode"),
                            Response::Pong,
                            "dribbled frame desynced"
                        );
                    }
                })
                .expect("spawn dribbler")
        })
        .collect();

    // --- real pipelined work while the flood sits idle -----------
    let mut client = Client::connect(addr).expect("connect worker client");
    client
        .create_session("soak", 8, bucketrank::server::WirePolicy::Lower)
        .expect("create");
    let ranking = bucketrank::BucketOrder::from_keys(&[1, 2, 3, 4, 4, 3, 2, 1]);
    let mut pipe = client.pipeline(32);
    let mut answered = 0usize;
    for i in 0..500 {
        let sent = if i % 5 == 0 {
            pipe.send_batch(&[
                Request::PushVoter {
                    session: "soak".into(),
                    ranking: ranking.clone(),
                },
                Request::MedianOrder {
                    session: "soak".into(),
                },
            ])
            .expect("batch send")
        } else {
            pipe.send(&Request::MedianOrder {
                session: "soak".into(),
            })
            .expect("send")
        };
        if sent.is_some() {
            answered += 1;
        }
    }
    answered += pipe.drain().expect("drain").len();
    assert_eq!(answered, 500, "every pipelined frame answered in order");

    for d in dribblers {
        d.join().expect("dribbler finished clean");
    }

    // --- bounded threads -----------------------------------------
    // All test-side threads are joined; the server must not have grown
    // by even one thread while holding `conns` live connections.
    if let (Some(before), Some(now)) = (baseline, thread_count()) {
        assert!(
            now <= before,
            "server grew threads under the flood: {before} -> {now}"
        );
    }

    // --- clean drain with every connection flushed ---------------
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert!(
        stats.connections >= (conns + 8) as u64,
        "flood + dribblers all accepted: {stats:?}"
    );
    // The drain closed every idle connection cleanly: reading yields
    // EOF (a clean close), never a torn frame or a hang.
    for (i, mut stream) in flood.into_iter().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
            Err(bucketrank::server::FrameError::Closed) => {}
            other => panic!("connection {i} not cleanly closed on drain: {other:?}"),
        }
    }
}
