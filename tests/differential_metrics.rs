//! Differential tests: every metric with more than one implementation in
//! the tree is cross-checked on random inputs.
//!
//! * `kprof_x2` (O(n log n) merge counting) vs `kprof_x2_naive` (O(n²)
//!   pair scan);
//! * `khaus` (Proposition 6 closed form) vs `khaus_theorem5` (witness
//!   construction) vs `khaus_brute` (max-min over all full refinements);
//! * `fhaus` (Theorem 5 construction) vs `fhaus_brute`.
//!
//! The brute-force Hausdorff enumerations cost
//! `refinement_count(σ) · refinement_count(τ)` distance evaluations, so
//! those properties draw from [`gen::bounded_refinement_pair`], which
//! rejection-samples pairs whose joint refinement count stays under a
//! fixed budget (and shrinks without ever exceeding it).

use bucketrank::metrics::hausdorff::{fhaus, fhaus_brute, khaus, khaus_brute, khaus_theorem5};
use bucketrank::metrics::kendall::{kprof_x2, kprof_x2_naive};
use bucketrank_testkit::prelude::*;

#[test]
fn kprof_fast_matches_naive_small() {
    check(
        "kprof_fast_matches_naive_small",
        gen::order_pair(12, 3),
        |(a, b)| {
            assert_eq!(kprof_x2(a, b).unwrap(), kprof_x2_naive(a, b).unwrap());
        },
    );
}

#[test]
fn kprof_fast_matches_naive_large() {
    check(
        "kprof_fast_matches_naive_large",
        gen::order_pair(60, 7),
        |(a, b)| {
            assert_eq!(kprof_x2(a, b).unwrap(), kprof_x2_naive(a, b).unwrap());
        },
    );
}

#[test]
fn khaus_three_ways_agree() {
    check(
        "khaus_three_ways_agree",
        gen::bounded_refinement_pair(9, 2, 20_000),
        |(a, b)| {
            let closed = khaus(a, b).unwrap();
            assert_eq!(closed, khaus_theorem5(a, b).unwrap());
            assert_eq!(closed, khaus_brute(a, b).unwrap());
        },
    );
}

#[test]
fn khaus_closed_form_vs_theorem5_large() {
    // The closed form and the witness construction are both polynomial,
    // so this pair can be checked far beyond brute-force reach.
    check(
        "khaus_closed_form_vs_theorem5_large",
        gen::order_pair(50, 6),
        |(a, b)| {
            assert_eq!(khaus(a, b).unwrap(), khaus_theorem5(a, b).unwrap());
        },
    );
}

#[test]
fn fhaus_matches_brute_force() {
    check(
        "fhaus_matches_brute_force",
        gen::bounded_refinement_pair(9, 2, 20_000),
        |(a, b)| {
            assert_eq!(fhaus(a, b).unwrap(), fhaus_brute(a, b).unwrap());
        },
    );
}
