//! Differential conformance for protocol v2 pipelining and batching:
//! the same degenerate-heavy edit scripts that drive the v1 loopback
//! suite are replayed over a real socket with K∈{1,4,32} outstanding
//! frames — as v1 singles, as v2 `Batch` frames, and as random-ish
//! interleavings of both — and **every** reply must arrive in order
//! and be byte-identical to the response an in-process [`Service`]
//! mirror computes for the same op, including typed per-op errors
//! mid-batch.

use bucketrank::server::proto::{ErrorCode, Request, Response, WirePolicy};
use bucketrank::server::{Client, PipelineReply, Server, ServerConfig, Service};
use bucketrank::BucketOrder;
use bucketrank_testkit::gen::EditOp;
use bucketrank_testkit::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The degenerate-heavy edit-script stream shared with the v1
/// differential suite (`tests/server_loopback.rs`).
fn scripts() -> impl Gen<Value = Vec<EditOp>> {
    gen::edit_script_with_degenerates(3..=12, 6, 3)
}

/// Domain size of a script: read off its first embedded ranking.
fn script_domain(script: &[EditOp]) -> usize {
    script
        .iter()
        .find_map(|op| match op {
            EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
            EditOp::Remove(_) => None,
        })
        .expect("scripts always embed a ranking")
}

/// Runs one request on the mirror, records `(request, expected reply
/// bytes)`, and returns the mirror's response for live-voter tracking.
fn mirror_step(
    mirror: &Service,
    pairs: &mut Vec<(Request, Vec<u8>)>,
    req: Request,
) -> Response {
    let resp = mirror.handle(req.clone());
    pairs.push((req, resp.encode()));
    resp
}

/// Expands one edit script into a full request stream — session
/// lifecycle, edits, every read type, and deliberate typed errors —
/// with the byte-exact expected reply for each, computed from a fresh
/// in-process [`Service`]. The remote server starts the same session
/// from the same empty state, so voter ids and every derived value
/// align op-for-op.
fn mirror_script(session: &str, policy: WirePolicy, script: &[EditOp]) -> Vec<(Request, Vec<u8>)> {
    let n = script_domain(script);
    let mirror = Service::new(8);
    let mut live: Vec<u64> = Vec::new();
    let mut pairs: Vec<(Request, Vec<u8>)> = Vec::new();
    let candidate = BucketOrder::from_keys(&(0..n as i64).collect::<Vec<i64>>());

    mirror_step(
        &mirror,
        &mut pairs,
        Request::CreateSession {
            name: session.to_owned(),
            n: n as u32,
            policy,
        },
    );

    for (step, op) in script.iter().enumerate() {
        match op {
            EditOp::Push(r) => {
                let resp = mirror_step(
                    &mirror,
                    &mut pairs,
                    Request::PushVoter {
                        session: session.to_owned(),
                        ranking: r.clone(),
                    },
                );
                if let Response::VoterPushed { voter } = resp {
                    live.push(voter);
                }
            }
            EditOp::Remove(i) => {
                let target = if live.is_empty() {
                    u64::MAX
                } else {
                    live[i % live.len()]
                };
                let resp = mirror_step(
                    &mirror,
                    &mut pairs,
                    Request::RemoveVoter {
                        session: session.to_owned(),
                        voter: target,
                    },
                );
                if matches!(resp, Response::VoterRemoved) {
                    live.retain(|v| *v != target);
                }
            }
            EditOp::Replace(i, r) => {
                let target = if live.is_empty() {
                    u64::MAX
                } else {
                    live[i % live.len()]
                };
                mirror_step(
                    &mirror,
                    &mut pairs,
                    Request::ReplaceVoter {
                        session: session.to_owned(),
                        voter: target,
                        ranking: r.clone(),
                    },
                );
            }
        }

        // Every read type after every edit; the k sweep crosses
        // InvalidK, ghost voter ids cross UnknownVoter, and empty
        // profiles cross NoVoters — typed errors mid-stream.
        mirror_step(
            &mirror,
            &mut pairs,
            Request::MedianOrder {
                session: session.to_owned(),
            },
        );
        mirror_step(
            &mirror,
            &mut pairs,
            Request::TopK {
                session: session.to_owned(),
                k: ((step * 3) % (n + 2)) as u32,
            },
        );
        mirror_step(
            &mirror,
            &mut pairs,
            Request::KemenyCost {
                session: session.to_owned(),
                candidate: candidate.clone(),
            },
        );
        let (va, vb) = match (live.first(), live.last()) {
            (Some(a), Some(b)) => (*a, *b),
            _ => (u64::MAX, u64::MAX),
        };
        mirror_step(
            &mirror,
            &mut pairs,
            Request::PairMetric {
                session: session.to_owned(),
                metric: bucketrank::server::MetricKind::ALL[step % 4],
                voter_a: va,
                voter_b: vb,
            },
        );
    }

    // A guaranteed mid-stream typed error, then teardown.
    mirror_step(
        &mirror,
        &mut pairs,
        Request::PushVoter {
            session: session.to_owned(),
            ranking: BucketOrder::trivial(n + 1),
        },
    );
    mirror_step(
        &mirror,
        &mut pairs,
        Request::DropSession {
            name: session.to_owned(),
        },
    );
    pairs
}

/// Replays a mirrored request stream over a real socket with `k`
/// outstanding frames, packing requests into wire frames according to
/// `chunk_cycle` (1 → a v1 single frame, m>1 → a v2 batch of m), and
/// asserts the replies arrive in order, byte-identical to the mirror.
fn replay(addr: std::net::SocketAddr, k: usize, chunk_cycle: &[usize], pairs: &[(Request, Vec<u8>)]) {
    let mut client = Client::connect(addr).expect("connect");
    let mut pipe = client.pipeline(k);
    let mut got: Vec<PipelineReply> = Vec::new();
    let mut expected: Vec<PipelineReply> = Vec::new();
    let mut i = 0;
    let mut chunk = 0;
    while i < pairs.len() {
        let size = chunk_cycle[chunk % chunk_cycle.len()]
            .clamp(1, pairs.len() - i);
        chunk += 1;
        let window = &pairs[i..i + size];
        let evicted = if size == 1 {
            expected.push(PipelineReply::Single(window[0].1.clone()));
            pipe.send(&window[0].0).expect("pipelined send")
        } else {
            let reqs: Vec<Request> = window.iter().map(|(r, _)| r.clone()).collect();
            expected.push(PipelineReply::Batch(
                window.iter().map(|(_, b)| b.clone()).collect(),
            ));
            pipe.send_batch(&reqs).expect("pipelined batch send")
        };
        if let Some(reply) = evicted {
            got.push(reply);
        }
        assert!(pipe.outstanding() <= k, "pipeline depth bound violated");
        i += size;
    }
    got.extend(pipe.drain().expect("drain replies"));
    assert_eq!(
        got.len(),
        expected.len(),
        "every sent frame must be answered exactly once"
    );
    for (at, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g, e,
            "reply {at} of {} (depth {k}) diverged from the in-process mirror",
            expected.len()
        );
    }
}

#[test]
fn pipelined_and_batched_replies_match_the_in_process_mirror() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let case = AtomicUsize::new(0);

    // Per depth: pure v1 singles, pure v2 batches, and a v1/v2
    // interleaving on the same connection.
    let shapes: [(usize, &[usize]); 3] = [
        (1, &[1]),
        (4, &[4, 7, 2, 1]),
        (32, &[1, 3, 1, 6, 2]),
    ];

    check(
        "pipelined_and_batched_replies_match_the_in_process_mirror",
        scripts(),
        |script| {
            let seq = case.fetch_add(1, Ordering::Relaxed);
            let policy = if seq.is_multiple_of(2) {
                WirePolicy::Lower
            } else {
                WirePolicy::Upper
            };
            for (k, cycle) in shapes {
                let session = format!("pipe-{seq}-{k}");
                let pairs = mirror_script(&session, policy, script);
                replay(addr, k, cycle, &pairs);
            }
        },
    );

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert_eq!(stats.rejected_busy, 0, "{stats:?}");
    assert!(stats.requests > 0);
}

/// Typed per-op errors mid-batch: the whole reply shape is preserved
/// (one sub-reply per sub-request) and byte-matches
/// [`Service::handle_batch`] on the same ops.
#[test]
fn typed_errors_mid_batch_preserve_shape_and_bytes() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let reqs = vec![
        Request::CreateSession {
            name: "mid".into(),
            n: 3,
            policy: WirePolicy::Lower,
        },
        Request::PushVoter {
            session: "mid".into(),
            ranking: BucketOrder::from_keys(&[1, 2, 3]),
        },
        Request::PushVoter {
            session: "mid".into(),
            ranking: BucketOrder::from_keys(&[1, 2]), // domain mismatch
        },
        Request::MedianOrder {
            session: "nope".into(), // unknown session
        },
        Request::TopK {
            session: "mid".into(),
            k: 99, // invalid k
        },
        Request::MedianOrder { session: "mid".into() },
        Request::DropSession { name: "mid".into() },
    ];
    let mirror = Service::new(8);
    let expected: Vec<Vec<u8>> = mirror
        .handle_batch(reqs.clone())
        .iter()
        .map(Response::encode)
        .collect();

    let got = client.call_batch_raw(&reqs).expect("batch round trip");
    assert_eq!(got, expected, "per-op replies diverged from handle_batch");
    // The failures really are typed errors, not truncation.
    assert!(matches!(
        Response::decode(&got[2]).unwrap(),
        Response::Error { code: ErrorCode::DomainMismatch, .. }
    ));
    assert!(matches!(
        Response::decode(&got[3]).unwrap(),
        Response::Error { code: ErrorCode::UnknownSession, .. }
    ));
    assert!(matches!(
        Response::decode(&got[5]).unwrap(),
        Response::Ranking { .. }
    ));

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
}

/// `Shutdown` inside a batch answers a typed `BadRequest` and must not
/// drain the server; a v1 `Shutdown` frame afterwards still does.
#[test]
fn shutdown_inside_a_batch_is_rejected_without_draining() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let reqs = vec![Request::Ping, Request::Shutdown, Request::Ping];
    let mirror = Service::new(1);
    let expected: Vec<Vec<u8>> = mirror
        .handle_batch(reqs.clone())
        .iter()
        .map(Response::encode)
        .collect();
    let got = client.call_batch_raw(&reqs).expect("batch round trip");
    assert_eq!(got, expected);
    assert!(matches!(
        Response::decode(&got[1]).unwrap(),
        Response::Error { code: ErrorCode::BadRequest, .. }
    ));

    // Not draining: the same connection keeps being served, and so do
    // fresh ones.
    client.ping().expect("connection survives the rejected shutdown");
    let mut fresh = Client::connect(addr).expect("connect");
    fresh.ping().expect("server did not drain");

    // The real thing still works as a v1 frame.
    client.shutdown_server().expect("v1 shutdown");
    server.wait_shutdown_requested();
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
}
