//! Section 4: the Hausdorff characterization machinery.
//!
//! * Lemma 3 — `min_{τ̄ ⪯ τ} d(σ̄, τ̄)` is attained at `τ̄ = σ̄∗τ`;
//! * Lemma 4 / Theorem 5 — the max-min is witnessed by the two
//!   constructible pairs `(ρ∗τᴿ∗σ, ρ∗σ∗τ)` and `(ρ∗τ∗σ, ρ∗σᴿ∗τ)`;
//! * Proposition 6 — `KHaus = |U| + max{|S|, |T|}`.
//!
//! Verified against brute-force enumeration of all full refinements.

use bucketrank::core::refine::{full_refinements, star};
use bucketrank::metrics::hausdorff::{
    fhaus, fhaus_brute, khaus, khaus_brute, khaus_theorem5, theorem5_witnesses,
};
use bucketrank::metrics::{full, pairs};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

/// Lemma 3: for a full σ̄ and partial τ, the nearest full refinement
/// of τ is σ̄∗τ — under both F and K.
#[test]
fn lemma3_nearest_refinement() {
    check(
        "lemma3_nearest_refinement",
        gen::order_pair(5, 5),
        |(sigma, tau)| {
            let sigma_full = sigma.arbitrary_full_refinement();
            let best = star(&sigma_full, tau).unwrap();
            let best_f = full::footrule(&sigma_full, &best).unwrap();
            let best_k = full::kendall(&sigma_full, &best).unwrap();
            for t in full_refinements(tau) {
                assert!(full::footrule(&sigma_full, &t).unwrap() >= best_f);
                assert!(full::kendall(&sigma_full, &t).unwrap() >= best_k);
            }
        },
    );
}

/// Theorem 5 witnesses are genuine refinements and reproduce both
/// Hausdorff distances computed by brute force.
#[test]
fn theorem5_matches_brute_force() {
    check(
        "theorem5_matches_brute_force",
        gen::order_pair(5, 3),
        |(sigma, tau)| {
            let ((s1, t1), (s2, t2)) = theorem5_witnesses(sigma, tau).unwrap();
            for (w, base) in [(&s1, sigma), (&s2, sigma)] {
                assert!(bucketrank::core::refine::is_refinement(w, base).unwrap());
                assert!(w.is_full());
            }
            for (w, base) in [(&t1, tau), (&t2, tau)] {
                assert!(bucketrank::core::refine::is_refinement(w, base).unwrap());
                assert!(w.is_full());
            }
            assert_eq!(fhaus(sigma, tau).unwrap(), fhaus_brute(sigma, tau).unwrap());
            assert_eq!(khaus(sigma, tau).unwrap(), khaus_brute(sigma, tau).unwrap());
        },
    );
}

/// Proposition 6 closed form vs the Theorem 5 construction.
#[test]
fn proposition6_closed_form() {
    check(
        "proposition6_closed_form",
        gen::order_pair(14, 4),
        |(sigma, tau)| {
            let c = pairs::pair_counts(sigma, tau).unwrap();
            let closed = c.discordant + c.tied_left_only.max(c.tied_right_only);
            assert_eq!(closed, khaus(sigma, tau).unwrap());
            assert_eq!(closed, khaus_theorem5(sigma, tau).unwrap());
        },
    );
}

/// The same witness pairs exhibit the Hausdorff distance for BOTH F
/// and K — the "interesting" remark after Theorem 5.
#[test]
fn same_pairs_witness_both_metrics() {
    check(
        "same_pairs_witness_both_metrics",
        gen::order_pair(5, 3),
        |(sigma, tau)| {
            let ((s1, t1), (s2, t2)) = theorem5_witnesses(sigma, tau).unwrap();
            let f = full::footrule(&s1, &t1)
                .unwrap()
                .max(full::footrule(&s2, &t2).unwrap());
            let k = full::kendall(&s1, &t1)
                .unwrap()
                .max(full::kendall(&s2, &t2).unwrap());
            assert_eq!(f, fhaus_brute(sigma, tau).unwrap());
            assert_eq!(k, khaus_brute(sigma, tau).unwrap());
        },
    );
}

#[test]
fn worked_example_from_definitions() {
    // σ = [0 1 | 2], τ = [2 | 0 1]: compute KHaus by hand.
    // Pairs: {0,1} tied in both; {0,2}, {1,2} discordant (σ has them
    // before 2, τ after). |U| = 2, |S| = |T| = 0 ⇒ KHaus = 2.
    let sigma = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
    let tau = BucketOrder::from_buckets(3, vec![vec![2], vec![0, 1]]).unwrap();
    assert_eq!(khaus(&sigma, &tau).unwrap(), 2);
    // FHaus: refinements are {012, 102} and {201, 210}; the worst-case
    // best match: F(012, 201) = 4, F(012, 210)= 6, F(102, 201) = 6,
    // F(102, 210) = 4 ⇒ every refinement has a partner at distance 4.
    assert_eq!(fhaus(&sigma, &tau).unwrap(), 4);
}
