//! Differential conformance suite for the shared pairwise-preference
//! tally (`aggregate::tally::ProfileTally`): every tally-backed cost,
//! count and majority query must return **exactly** the same integer as
//! the naive per-pair `prefers()`/`is_tied()` loops it replaced, and the
//! total Kemeny objective must equal the `kendall::kprof_x2` sum over
//! the voters — on degenerate-heavy profiles (singleton domains,
//! all-tied voters, unanimous full profiles). The parallel tally build
//! is pinned to the sequential one, and the rewired aggregators
//! (majority digraph, local Kemenization) are pinned to in-test copies
//! of their pre-tally reference implementations.
//!
//! The tiled kernel gets its own differential lanes: domains straddling
//! the `TILE_ROWS` slab boundary, chunked builds at adversarial chunk
//! sizes pinned to the single-chunk build, and a deterministic
//! `u16`→`u32` promotion check at profiles straddling `CHUNK_VOTERS`
//! (= `u16::MAX`) voters, where the narrow partial cells hit their
//! ceiling exactly.

use bucketrank::aggregate::condorcet::MajorityGraph;
use bucketrank::aggregate::cost::{self, AggMetric};
use bucketrank::aggregate::local::{local_kemenize, local_kemenize_with_tally};
use bucketrank::aggregate::tally::{ProfileTally, CHUNK_VOTERS, TILE_ROWS};
use bucketrank::aggregate::AggregateError;
use bucketrank::metrics::kendall;
use bucketrank::{BucketOrder, ElementId};
use bucketrank_testkit::prelude::*;

/// The degenerate-heavy profile stream shared by every property.
fn profiles() -> impl Gen<Value = Vec<BucketOrder>> {
    gen::profile_with_degenerates(1..=7, 9, 3)
}

/// Naive strict-preference count, the loop the tally replaced.
fn naive_strict(inputs: &[BucketOrder], a: ElementId, b: ElementId) -> u32 {
    inputs.iter().filter(|s| s.prefers(a, b)).count() as u32
}

fn naive_ties(inputs: &[BucketOrder], a: ElementId, b: ElementId) -> u32 {
    inputs.iter().filter(|s| s.is_tied(a, b)).count() as u32
}

#[test]
fn tally_counts_match_naive_prefers_loops() {
    check(
        "tally_counts_match_naive_prefers_loops",
        profiles(),
        |profile| {
            let t = ProfileTally::build(profile).unwrap();
            let n = profile[0].len() as ElementId;
            assert_eq!(t.voters(), profile.len());
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let strict = naive_strict(profile, a, b);
                    let ties = naive_ties(profile, a, b);
                    assert_eq!(t.strict_count(a, b), strict, "strict({a},{b})");
                    assert_eq!(t.tie_count(a, b), ties, "ties({a},{b})");
                    assert_eq!(t.weight_x2(a, b), 2 * strict + ties, "w2({a},{b})");
                    assert_eq!(
                        t.majority_prefers(a, b),
                        strict > naive_strict(profile, b, a),
                        "majority({a},{b})"
                    );
                    assert_eq!(
                        t.strict_majority(a, b),
                        2 * strict as usize > profile.len(),
                        "strict_majority({a},{b})"
                    );
                    assert_eq!(
                        t.pair_cost_x2(a, b),
                        2 * naive_strict(profile, b, a) + ties,
                        "pair_cost({a},{b})"
                    );
                }
            }
        },
    );
}

#[test]
fn kemeny_cost_matches_kprof_sum_and_fast_path() {
    // The last voter doubles as the candidate: same domain guaranteed,
    // and it ranges over the full degenerate spectrum (all-tied, full,
    // generic) so the tied-candidate arm of the cost loop is exercised.
    check(
        "kemeny_cost_matches_kprof_sum_and_fast_path",
        gen::profile_with_degenerates(2..=7, 8, 3),
        |profile| {
            let (cand, voters) = profile.split_last().unwrap();
            let t = ProfileTally::build(voters).unwrap();
            let direct: u64 = voters
                .iter()
                .map(|s| kendall::kprof_x2(cand, s).unwrap())
                .sum();
            assert_eq!(t.kemeny_cost_x2(cand).unwrap(), direct, "{cand:?}");
            assert_eq!(
                cost::total_cost_x2(AggMetric::KProf, cand, voters).unwrap(),
                direct
            );
            // The tally fast path answers exactly for KProf and defers
            // for every metric that needs per-voter structure.
            assert_eq!(
                cost::total_cost_x2_tally(AggMetric::KProf, cand, &t),
                Some(Ok(direct))
            );
            for metric in [AggMetric::FProf, AggMetric::KHaus, AggMetric::FHaus] {
                assert!(!metric.tally_expressible());
                assert!(cost::total_cost_x2_tally(metric, cand, &t).is_none());
            }
        },
    );
}

#[test]
fn adjacent_swap_deltas_match_cost_differences() {
    check(
        "adjacent_swap_deltas_match_cost_differences",
        profiles(),
        |profile| {
            let t = ProfileTally::build(profile).unwrap();
            // A full candidate derived from the profile's first voter.
            let perm = profile[0]
                .arbitrary_full_refinement()
                .as_permutation()
                .unwrap();
            let base = t
                .kemeny_cost_x2(&BucketOrder::from_permutation(&perm).unwrap())
                .unwrap() as i64;
            for i in 0..perm.len().saturating_sub(1) {
                let mut sw = perm.clone();
                sw.swap(i, i + 1);
                let after = t
                    .kemeny_cost_x2(&BucketOrder::from_permutation(&sw).unwrap())
                    .unwrap() as i64;
                assert_eq!(
                    after - base,
                    t.swap_delta_x2(perm[i], perm[i + 1]),
                    "swap at {i}"
                );
            }
        },
    );
}

#[test]
fn tiled_build_matches_naive_across_tile_boundary() {
    // Domains straddling the TILE_ROWS slab boundary: the last tile is
    // partial (n not a multiple of TILE_ROWS), or the profile is a
    // single tile exactly. Degenerate voters (all-tied, singleton
    // buckets, unanimous full) ride along via the generator. The
    // reference is the naive per-pair scan — every strict and w2 cell
    // must match bit for bit.
    check(
        "tiled_build_matches_naive_across_tile_boundary",
        gen::profile_with_degenerates(1..=5, TILE_ROWS + 3, 4),
        |profile| {
            let t = ProfileTally::build(profile).unwrap();
            let n = profile[0].len() as ElementId;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let strict = naive_strict(profile, a, b);
                    let ties = naive_ties(profile, a, b);
                    assert_eq!(t.strict_count(a, b), strict, "strict({a},{b})");
                    assert_eq!(t.weight_x2(a, b), 2 * strict + ties, "w2({a},{b})");
                }
            }
        },
    );
}

#[test]
fn chunked_builds_match_single_chunk_build() {
    // Adversarial chunk sizes: 1 (every voter its own u16 partial,
    // maximal widen traffic), sizes that leave a remainder chunk, and
    // sizes larger than the profile (single-chunk fast path). All must
    // be bit-identical to the default build.
    check(
        "chunked_builds_match_single_chunk_build",
        gen::profile_with_degenerates(1..=9, 8, 3),
        |profile| {
            let reference = ProfileTally::build(profile).unwrap();
            for chunk in [1usize, 2, 3, 5, profile.len(), profile.len() + 7] {
                let chunked = ProfileTally::build_with_chunk(profile, chunk).unwrap();
                assert_eq!(chunked, reference, "chunk = {chunk}");
            }
        },
    );
}

#[test]
fn promotion_boundary_is_exact_at_chunk_voters() {
    // Profiles straddling CHUNK_VOTERS (= u16::MAX) voters, where the
    // u16 partial cells hit their ceiling exactly and the build rolls
    // into a second chunk. Voters cycle through a small pool, so every
    // expected count is analytic: full cycles × the pool's count plus
    // the partial prefix's. The unanimous pool entry drives cells to
    // the exact u16::MAX maximum at m = CHUNK_VOTERS.
    let pool = [
        BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap(),
        BucketOrder::from_keys(&[1, 1, 2, 2]),
        BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap(),
    ];
    for m in [CHUNK_VOTERS - 1, CHUNK_VOTERS, CHUNK_VOTERS + 1, CHUNK_VOTERS + 2] {
        let profile: Vec<BucketOrder> = (0..m).map(|i| pool[i % pool.len()].clone()).collect();
        let t = ProfileTally::build(&profile).unwrap();
        let par = ProfileTally::build_parallel_unclamped(&profile, 3).unwrap();
        assert_eq!(par, t, "parallel promotion at m = {m}");
        let (cycles, rem) = (m / pool.len(), m % pool.len());
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let strict = cycles as u32 * naive_strict(&pool, a, b)
                    + naive_strict(&pool[..rem], a, b);
                let ties =
                    cycles as u32 * naive_ties(&pool, a, b) + naive_ties(&pool[..rem], a, b);
                assert_eq!(t.strict_count(a, b), strict, "strict({a},{b}) at m = {m}");
                assert_eq!(t.weight_x2(a, b), 2 * strict + ties, "w2({a},{b}) at m = {m}");
            }
        }
        // Sanity on the ceiling itself: with the unanimous-majority
        // pool, element 0 beats element 3 in every voter, so the
        // single-chunk case peaks at exactly u16::MAX.
        assert_eq!(t.strict_count(0, 3), m as u32);
    }
}

#[test]
fn parallel_build_matches_sequential() {
    check(
        "parallel_build_matches_sequential",
        gen::profile_with_degenerates(1..=12, 10, 4),
        |profile| {
            let seq = ProfileTally::build(profile).unwrap();
            for threads in [2usize, 3, 5, 16] {
                let par = ProfileTally::build_parallel(profile, threads).unwrap();
                assert_eq!(par, seq, "threads = {threads}");
            }
        },
    );
}

#[test]
fn majority_graph_matches_naive_double_scan() {
    check(
        "majority_graph_matches_naive_double_scan",
        profiles(),
        |profile| {
            let g = MajorityGraph::build(profile).unwrap();
            let n = profile[0].len() as ElementId;
            // The pre-tally reference: an independent voter scan per
            // ordered pair (both directions recomputed).
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let mut pro = 0i64;
                    for s in profile.iter() {
                        if s.prefers(a, b) {
                            pro += 1;
                        } else if s.prefers(b, a) {
                            pro -= 1;
                        }
                    }
                    assert_eq!(g.beats(a, b), pro > 0, "beats({a},{b})");
                }
            }
        },
    );
}

/// The pre-tally `local_kemenize`: per-swap pair costs summed over the
/// voters. Kept verbatim as the reference implementation.
fn naive_local_kemenize(candidate: &BucketOrder, inputs: &[BucketOrder]) -> BucketOrder {
    let mut perm = candidate.as_permutation().expect("full candidate");
    let input_buckets: Vec<&[u32]> = inputs.iter().map(|s| s.bucket_indices()).collect();
    let pair_cost = |a: ElementId, b: ElementId| -> i64 {
        let mut c = 0i64;
        for bo in &input_buckets {
            let (ba, bb) = (bo[a as usize], bo[b as usize]);
            if bb < ba {
                c += 2;
            } else if ba == bb {
                c += 1;
            }
        }
        c
    };
    for i in 1..perm.len() {
        let mut j = i;
        while j > 0 {
            let (ahead, here) = (perm[j - 1], perm[j]);
            if pair_cost(here, ahead) < pair_cost(ahead, here) {
                perm.swap(j - 1, j);
                j -= 1;
            } else {
                break;
            }
        }
    }
    BucketOrder::from_permutation(&perm).expect("permutation preserved")
}

#[test]
fn local_kemenize_matches_naive_reference() {
    check(
        "local_kemenize_matches_naive_reference",
        profiles(),
        |profile| {
            let start = profile[0].arbitrary_full_refinement().reverse();
            let expected = naive_local_kemenize(&start, profile);
            assert_eq!(local_kemenize(&start, profile).unwrap(), expected);
            let t = ProfileTally::build(profile).unwrap();
            assert_eq!(local_kemenize_with_tally(&start, &t).unwrap(), expected);
        },
    );
}

#[test]
fn tally_errors_are_reported_not_panicked() {
    assert_eq!(
        ProfileTally::build(&[]).unwrap_err(),
        AggregateError::NoInputs
    );
    assert!(matches!(
        ProfileTally::build(&[BucketOrder::trivial(2), BucketOrder::trivial(5)]).unwrap_err(),
        AggregateError::DomainMismatch { .. }
    ));
    let t = ProfileTally::build(&[BucketOrder::trivial(4)]).unwrap();
    assert!(matches!(
        t.kemeny_cost_x2(&BucketOrder::trivial(5)).unwrap_err(),
        AggregateError::DomainMismatch { .. }
    ));
    assert!(matches!(
        local_kemenize_with_tally(&BucketOrder::trivial(5), &t).unwrap_err(),
        AggregateError::DomainMismatch { .. }
    ));
    // A tied candidate is rejected by local Kemenization but accepted
    // (and exactly costed) by the Kemeny objective.
    assert!(matches!(
        local_kemenize_with_tally(&BucketOrder::trivial(4), &t).unwrap_err(),
        AggregateError::NotFullRanking
    ));
    assert_eq!(t.kemeny_cost_x2(&BucketOrder::trivial(4)).unwrap(), 0);
}
