//! Proposition 13: `K^(p)` is a metric for `p ∈ [1/2, 1]`, a near metric
//! for `p ∈ (0, 1/2)`, and not a distance measure at `p = 0`.

use bucketrank::core::consistent::all_bucket_orders;
use bucketrank::metrics::kendall::k_p;
use bucketrank::metrics::near::{
    check_distance_measure, check_triangle, max_triangle_ratio, DistanceMeasureViolation,
};
use bucketrank::BucketOrder;

#[test]
fn p_zero_is_not_a_distance_measure() {
    let orders = all_bucket_orders(3);
    let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, 0.0).unwrap();
    assert!(matches!(
        check_distance_measure(&orders, d),
        Some(DistanceMeasureViolation::DistinctAtDistanceZero(_, _))
    ));
}

#[test]
fn p_at_least_half_is_a_metric() {
    for n in 2..=3 {
        let orders = all_bucket_orders(n);
        for &p in &[0.5, 0.6, 0.75, 1.0] {
            let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, p).unwrap();
            assert_eq!(check_distance_measure(&orders, d), None, "p = {p}, n = {n}");
            assert_eq!(check_triangle(&orders, d), None, "p = {p}, n = {n}");
        }
    }
}

#[test]
fn p_below_half_violates_triangle_but_is_near_metric() {
    for n in 2..=3 {
        let orders = all_bucket_orders(n);
        for &p in &[0.1, 0.25, 0.4] {
            let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, p).unwrap();
            // Still a distance measure...
            assert_eq!(check_distance_measure(&orders, d), None, "p = {p}");
            // ...but the triangle inequality fails...
            assert!(check_triangle(&orders, d).is_some(), "p = {p}, n = {n}");
            // ...by exactly the bounded factor 1/(2p) (near-metric
            // constant: K^(p) and K^(1/2) are within 1/(2p) of each
            // other, so the relaxed polygonal inequality holds with
            // c = 1/(2p)).
            let r = max_triangle_ratio(&orders, d).unwrap();
            let c = 1.0 / (2.0 * p);
            assert!(r <= c + 1e-9, "p = {p}: ratio {r} exceeds 1/(2p) = {c}");
        }
    }
}

#[test]
fn near_metric_constant_is_attained_on_paper_triple() {
    // τ1 = a<b, τ2 = {a b}, τ3 = b<a: d(τ1,τ3) = 1 = (1/2p)·(p + p).
    let orders = all_bucket_orders(2);
    for &p in &[0.1, 0.25, 0.4] {
        let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, p).unwrap();
        let r = max_triangle_ratio(&orders, d).unwrap();
        assert!((r - 1.0 / (2.0 * p)).abs() < 1e-9, "p = {p}: r = {r}");
    }
}

#[test]
fn kp_scaling_equivalence_class() {
    // K^(p) ≤ K^(p') ≤ (p'/p) K^(p) for 0 < p < p': all K^(p) with p > 0
    // are equivalent distance measures (the proof skeleton of Prop. 13).
    let orders = all_bucket_orders(4);
    let grid = [0.2, 0.35, 0.5, 0.8, 1.0];
    for (i, a) in orders.iter().enumerate() {
        // Subsample the quadratic loop to keep this fast.
        for b in orders.iter().skip(i % 7).step_by(7) {
            for w in grid.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let dl = k_p(a, b, lo).unwrap();
                let dh = k_p(a, b, hi).unwrap();
                assert!(dl <= dh + 1e-12);
                assert!(dh <= (hi / lo) * dl + 1e-12);
            }
        }
    }
}
