//! Cross-crate integration of the baseline aggregators and application
//! layers added around the paper's core: Schulze, branch-and-bound
//! Kemeny, own-domain top-k aggregation, clustering, weighted variants,
//! and the similarity index.

use bucketrank::access::medrank::{medrank_top_k, medrank_top_k_weighted};
use bucketrank::access::similarity::SimilarityIndex;
use bucketrank::aggregate::bb::kemeny_optimal_bb;
use bucketrank::aggregate::cluster::k_medoids;
use bucketrank::aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank::aggregate::exact::kemeny_optimal_full;
use bucketrank::aggregate::median::{weighted_median_positions, MedianPolicy};
use bucketrank::aggregate::schulze::schulze;
use bucketrank::aggregate::topk::aggregate_topk_lists;
use bucketrank::metrics::topk::{kprof_x2_topk, set_difference_topk, TopKList};
use bucketrank::workloads::mallows::Mallows;
use bucketrank::workloads::random::{random_bucket_order, random_full_ranking, random_top_k};
use bucketrank::BucketOrder;
use bucketrank_testkit::rng::Pcg32;
use bucketrank_testkit::rng::{Rng, SeedableRng};

#[test]
fn bb_and_held_karp_agree_on_tied_profiles() {
    let mut rng = Pcg32::seed_from_u64(301);
    for _ in 0..20 {
        let n = rng.gen_range(4..=10);
        let m = rng.gen_range(3..=7);
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_bucket_order(&mut rng, n)).collect();
        let (_, hk) = kemeny_optimal_full(&inputs).unwrap();
        let (order, bb, _) = kemeny_optimal_bb(&inputs).unwrap();
        assert_eq!(hk, bb);
        assert_eq!(
            total_cost_x2(AggMetric::KProf, &order, &inputs).unwrap(),
            bb
        );
    }
}

#[test]
fn schulze_cost_is_competitive_and_condorcet_consistent() {
    use bucketrank::aggregate::condorcet::MajorityGraph;
    let mut rng = Pcg32::seed_from_u64(302);
    for _ in 0..25 {
        let n = rng.gen_range(4..=8);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_full_ranking(&mut rng, n)).collect();
        let out = schulze(&inputs).unwrap();
        // Condorcet winner (if any) sits alone in the first bucket.
        let g = MajorityGraph::build(&inputs).unwrap();
        if let Some(w) = g.condorcet_winner() {
            assert_eq!(out.bucket_index(w), 0);
        }
        // Cost sanity: never worse than the worst input by more than the
        // metric diameter (loose, but guards pathological outputs).
        let c = total_cost_x2(AggMetric::KProf, &out, &inputs).unwrap();
        let worst = inputs
            .iter()
            .map(|s| total_cost_x2(AggMetric::KProf, s, &inputs).unwrap())
            .max()
            .unwrap();
        assert!(c <= 2 * worst.max(1));
    }
}

#[test]
fn topk_aggregation_recovers_consensus_engines() {
    // Engines mostly agree on a top-3; one dissents entirely.
    let consensus = [100u32, 200, 300];
    let lists = vec![
        TopKList::new(vec![100, 200, 300]).unwrap(),
        TopKList::new(vec![100, 300, 200]).unwrap(),
        TopKList::new(vec![200, 100, 300]).unwrap(),
        TopKList::new(vec![900, 800, 700]).unwrap(),
    ];
    let out = aggregate_topk_lists(&lists, 3, MedianPolicy::Lower).unwrap();
    let mut got = out.items().to_vec();
    got.sort_unstable();
    assert_eq!(got, consensus);
    // The aggregate is close to the consensus lists under the [10]
    // measures and far from the dissenter.
    let d_consensus = kprof_x2_topk(&out, &lists[0]).unwrap();
    let d_dissent = kprof_x2_topk(&out, &lists[3]).unwrap();
    assert!(d_consensus < d_dissent);
    assert_eq!(set_difference_topk(&out, &lists[3]).unwrap(), 1.0);
}

#[test]
fn clustering_mallows_mixture_recovers_components() {
    let mut rng = Pcg32::seed_from_u64(303);
    let ref_a: Vec<u32> = (0..10).collect();
    let ref_b: Vec<u32> = (0..10).rev().collect();
    let a = Mallows::with_reference(ref_a, 1.2);
    let b = Mallows::with_reference(ref_b, 1.2);
    let mut inputs = Vec::new();
    for _ in 0..8 {
        inputs.push(a.sample(&mut rng));
    }
    for _ in 0..8 {
        inputs.push(b.sample(&mut rng));
    }
    let c = k_medoids(&inputs, 2, AggMetric::KProf).unwrap();
    // All of the first 8 together, all of the last 8 together.
    let first = c.assignment[0];
    assert!(c.assignment[..8].iter().all(|&x| x == first));
    let second = c.assignment[8];
    assert!(c.assignment[8..].iter().all(|&x| x == second));
    assert_ne!(first, second);
}

#[test]
fn weighted_median_and_weighted_medrank_agree_on_the_winner() {
    let mut rng = Pcg32::seed_from_u64(304);
    for _ in 0..60 {
        let n = rng.gen_range(3..=9);
        let m = rng.gen_range(2..=5);
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_full_ranking(&mut rng, n)).collect();
        let weights: Vec<f64> = (0..m).map(|_| rng.gen_range(1..=4) as f64).collect();
        let f = weighted_median_positions(&inputs, &weights).unwrap();
        let r = medrank_top_k_weighted(&inputs, &weights, 1).unwrap();
        let w = r.top[0];
        // MEDRANK's weighted winner reaches majority mass first ⇒ its
        // "strict majority rank" is minimal. That rank is the smallest d
        // with Σ{w_i : σ_i(w) ≤ d} > W/2 — which is ≥ the weighted lower
        // median and ≤ the weighted upper median + 1; assert the robust
        // property: no element has a strictly smaller weighted upper
        // median than the winner's strict-majority depth.
        let depth = r.stats.max_depth() as i64;
        let strictly_better = (0..n as u32).filter(|&e| {
            // e would have reached majority strictly earlier.
            let total: f64 = weights.iter().sum();
            let mut mass = 0.0;
            for (s, &wt) in inputs.iter().zip(&weights) {
                if s.position(e) < bucketrank::Pos::from_rank(depth) {
                    mass += wt;
                }
            }
            mass > total / 2.0
        });
        assert_eq!(
            strictly_better.count(),
            0,
            "someone beat the weighted winner {w}: {inputs:?} {weights:?}"
        );
        let _ = f;
    }
}

#[test]
fn similarity_index_agrees_with_medrank_on_distance_rankings() {
    // Build explicit |value − q| rankings and run plain MEDRANK; the
    // similarity index must produce the same winner set for k = 1 up to
    // cursor tie conventions — assert winner distance-rank optimality.
    let mut rng = Pcg32::seed_from_u64(305);
    for _ in 0..20 {
        let n = rng.gen_range(5..=40);
        let mut t = bucketrank::access::db::TableBuilder::new();
        t.column("x", bucketrank::access::db::AttrKind::Int);
        t.column("y", bucketrank::access::db::AttrKind::Int);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x = rng.gen_range(0..50i64);
            let y = rng.gen_range(0..50i64);
            xs.push(x);
            ys.push(y);
            t.row(vec![
                bucketrank::access::db::AttrValue::Int(x),
                bucketrank::access::db::AttrValue::Int(y),
            ]);
        }
        let table = t.finish().unwrap();
        let idx = SimilarityIndex::build(&table, &["x", "y"]).unwrap();
        let q = [rng.gen_range(0..50) as f64, rng.gen_range(0..50) as f64];
        let r = idx.nearest(&q, 1).unwrap();
        let w = r.top[0] as usize;

        // Offline distance rankings + plain MEDRANK.
        let dx: Vec<i64> = xs.iter().map(|&x| (x as f64 - q[0]).abs() as i64).collect();
        let dy: Vec<i64> = ys.iter().map(|&y| (y as f64 - q[1]).abs() as i64).collect();
        let rx = BucketOrder::from_keys(&dx);
        let ry = BucketOrder::from_keys(&dy);
        let offline = medrank_top_k(&[rx.clone(), ry.clone()], 1).unwrap();
        // Both winners must be "2-majority at their depth": compare the
        // max of their two distance ranks; the index winner may differ
        // from the offline one only on ties.
        let rank = |o: &BucketOrder, e: u32| o.position(e);
        let score =
            |e: u32| std::cmp::max(rank(&rx, e).half_units(), rank(&ry, e).half_units());
        assert!(
            score(w as u32) <= score(offline.top[0]) + 4,
            "similarity winner {w} much worse than offline {}",
            offline.top[0]
        );
    }
}

#[test]
fn random_top_k_lists_round_trip_through_aggregation() {
    let mut rng = Pcg32::seed_from_u64(306);
    for _ in 0..20 {
        let n = rng.gen_range(6..=15);
        let k = rng.gen_range(2..=4);
        let lists: Vec<TopKList> = (0..5)
            .map(|_| {
                let order = random_top_k(&mut rng, n, k);
                let items: Vec<u32> =
                    order.buckets().iter().take(k).map(|b| b[0]).collect();
                TopKList::new(items).unwrap()
            })
            .collect();
        let out = aggregate_topk_lists(&lists, k, MedianPolicy::Lower).unwrap();
        assert_eq!(out.k(), k);
        // Every output item was ranked by someone.
        for &e in out.items() {
            assert!(lists.iter().any(|l| l.contains(e)));
        }
    }
}
