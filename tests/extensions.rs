//! Integration tests for the extension surface: the [10]-style top-k
//! module, strong optimality, the typed Hungarian optimum, KwikSort, and
//! NRA-vs-TA agreement.

use bucketrank::aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank::aggregate::exact::{footrule_optimal_of_type, optimal_of_type};
use bucketrank::aggregate::kwiksort::{kwiksort, kwiksort_best_of};
use bucketrank::aggregate::strong::{aggregate_to_type_strong, is_projection_of};
use bucketrank::access::nra::nra_top_k;
use bucketrank::access::ta::{ta_top_k, ScoreList};
use bucketrank::metrics::topk::{
    as_bucket_orders, fprof_x2_topk, khaus_topk, kprof_x2_topk, TopKList,
};
use bucketrank::workloads::random::{random_bucket_order, random_top_k};
use bucketrank::{BucketOrder, MedianPolicy, TypeSeq};
use bucketrank_testkit::prelude::*;
use bucketrank_testkit::rng::Pcg32;

#[test]
fn typed_hungarian_matches_enumeration_randomized() {
    let mut rng = Pcg32::seed_from_u64(101);
    for _ in 0..40 {
        let n = rng.gen_range(3..=6);
        let m = rng.gen_range(2..=5);
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_bucket_order(&mut rng, n)).collect();
        for alpha in TypeSeq::all_types(n) {
            let (o1, c1) = footrule_optimal_of_type(&inputs, &alpha).unwrap();
            let (_, c2) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            assert_eq!(c1, c2, "type {alpha}, inputs {inputs:?}");
            assert_eq!(
                total_cost_x2(AggMetric::FProf, &o1, &inputs).unwrap(),
                c1
            );
        }
    }
}

#[test]
fn strong_aggregation_all_types_small_domains() {
    let mut rng = Pcg32::seed_from_u64(102);
    for _ in 0..25 {
        let n = rng.gen_range(3..=5);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_bucket_order(&mut rng, n)).collect();
        for alpha in TypeSeq::all_types(n) {
            let s = aggregate_to_type_strong(&inputs, &alpha, MedianPolicy::Lower).unwrap();
            assert!(
                is_projection_of(&s.output, &s.witness, &alpha).unwrap(),
                "type {alpha}"
            );
            // Witness keeps the Theorem 10 bound.
            let wc = total_cost_x2(AggMetric::FProf, &s.witness, &inputs).unwrap();
            let (_, opt) =
                bucketrank::aggregate::exact::optimal_partial_ranking(&inputs, AggMetric::FProf)
                    .unwrap();
            assert!(wc <= 2 * opt);
        }
    }
}

#[test]
fn kwiksort_never_catastrophic() {
    let mut rng = Pcg32::seed_from_u64(103);
    for trial in 0..30 {
        let n = rng.gen_range(4..=9);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_bucket_order(&mut rng, n)).collect();
        let out = kwiksort_best_of(&inputs, trial, 4).unwrap();
        assert!(out.is_full());
        let c = total_cost_x2(AggMetric::KProf, &out, &inputs).unwrap();
        // Sanity: no worse than the reverse of the best single input.
        let worst_single: u64 = inputs
            .iter()
            .map(|s| total_cost_x2(AggMetric::KProf, s, &inputs).unwrap())
            .max()
            .unwrap();
        assert!(c <= 2 * worst_single.max(1), "trial {trial}");
        // Determinism.
        assert_eq!(kwiksort(&inputs, trial).unwrap(), kwiksort(&inputs, trial).unwrap());
    }
}

#[test]
fn nra_and_ta_agree_on_top_k_sets() {
    let mut rng = Pcg32::seed_from_u64(104);
    for _ in 0..50 {
        let n = rng.gen_range(3..=30);
        let m = rng.gen_range(2..=4);
        let k = rng.gen_range(1..=n.min(5));
        let lists: Vec<ScoreList> = (0..m)
            .map(|_| {
                let scores: Vec<f64> =
                    (0..n).map(|_| (rng.gen_range(0..100) as f64) / 10.0).collect();
                ScoreList::from_scores(&scores).unwrap()
            })
            .collect();
        // Exact aggregate order with deterministic tie-break.
        let mut exact: Vec<(u32, f64)> = (0..n as u32)
            .map(|e| (e, lists.iter().map(|l| l.score(e)).sum()))
            .collect();
        exact.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let ta = ta_top_k(&lists, k).unwrap();
        let nra = nra_top_k(&lists, k).unwrap();
        // The certified *set* may resolve ties differently (equal
        // aggregates are interchangeable, and NRA's internal order among
        // equals depends on when bounds tighten), so compare the exact
        // aggregate-score multisets of the returned elements.
        let score_of = |e: u32| -> f64 { lists.iter().map(|l| l.score(e)).sum() };
        let mut want: Vec<i64> = exact[..k].iter().map(|&(_, s)| (s * 10.0).round() as i64).collect();
        let mut got_ta: Vec<i64> = ta.top.iter().map(|&(e, _)| (score_of(e) * 10.0).round() as i64).collect();
        let mut got_nra: Vec<i64> = nra.top.iter().map(|&(e, _, _)| (score_of(e) * 10.0).round() as i64).collect();
        want.sort_unstable();
        got_ta.sort_unstable();
        got_nra.sort_unstable();
        assert_eq!(got_ta, want, "TA diverged");
        assert_eq!(got_nra, want, "NRA diverged");
        // NRA performs no random accesses; TA may.
        assert!(nra.stats.random_accesses.iter().all(|&x| x == 0));
    }
}

/// The topk module is exactly "embed over the active domain, then use
/// the fixed-domain metrics" — and the Theorem 7 bounds carry over
/// pairwise.
#[test]
fn topk_module_consistency() {
    check(
        "topk_module_consistency",
        gen::pair(
            gen::vec_of(gen::u32_in(0..=11), 4..=4),
            gen::vec_of(gen::u32_in(0..=11), 4..=4),
        ),
        |(xs, ys)| {
            let dedup = |v: &[u32]| -> Vec<u32> {
                let mut out = Vec::new();
                for &e in v {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
                out
            };
            let a = TopKList::new(dedup(xs)).unwrap();
            let b = TopKList::new(dedup(ys)).unwrap();
            let (sa, sb) = as_bucket_orders(&a, &b);
            assert_eq!(
                kprof_x2_topk(&a, &b).unwrap(),
                bucketrank::metrics::kendall::kprof_x2(&sa, &sb).unwrap()
            );
            let kp = kprof_x2_topk(&a, &b).unwrap();
            let fp = fprof_x2_topk(&a, &b).unwrap();
            let kh = khaus_topk(&a, &b).unwrap();
            assert!(kp <= fp && (fp <= 2 * kp || kp == 0));
            assert!(kp <= 2 * kh && kh <= kp || kp == 0);
        },
    );
}

#[test]
fn topk_lists_from_bucket_orders_round_trip() {
    let mut rng = Pcg32::seed_from_u64(105);
    for _ in 0..50 {
        let n = rng.gen_range(3..=10);
        let k = rng.gen_range(1..=n - 1);
        let order = random_top_k(&mut rng, n, k);
        // Extract the top-k as a TopKList, embed a pair of identical
        // lists: distance zero.
        let items: Vec<u32> = order.buckets().iter().take(k).map(|b| b[0]).collect();
        let l = TopKList::new(items).unwrap();
        assert_eq!(kprof_x2_topk(&l, &l).unwrap(), 0);
        assert_eq!(l.k(), k);
    }
}
