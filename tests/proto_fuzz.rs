//! Testkit-driven fuzz suite for the wire protocol (`server::proto`)
//! and its transport: random byte bodies must decode to typed errors
//! or valid values — never a panic — every strict prefix of a valid
//! encoding must be a typed error, trailing bytes must be rejected,
//! and over a live socket a malformed stream must kill only the
//! offending **connection** while the server keeps serving.

use bucketrank::server::proto::{
    decode_batch, decode_batch_reply, encode_batch, read_frame, write_frame, FrameError,
    ProtoError, Request, Response, WirePolicy, WireRequest, WireRule, DEFAULT_MAX_FRAME,
    MAX_BATCH,
};
use bucketrank::server::{Client, ErrorCode, Server, ServerConfig};
use bucketrank_testkit::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;

/// Random request-ish bodies: raw bytes, plus mutations that keep a
/// valid opcode so decoding reaches the payload readers. A third of
/// the steered bodies wear the v2 batch header so the batch decoder's
/// count and sub-length readers get fuzzed too.
fn bodies() -> impl Gen<Value = Vec<u8>> {
    gen::from_fn(|rng| {
        let len = rng.gen_range(0..=96usize);
        let mut body: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        // Half the time, steer onto the parsers behind valid headers.
        if rng.gen_range(0..2u32) == 0 && body.len() >= 2 {
            if rng.gen_range(0..3u32) == 0 {
                body[0] = 2; // PROTO_VERSION_2
                body[1] = 0x20; // OP_BATCH
            } else {
                body[0] = 1; // PROTO_VERSION
                body[1] = rng.gen_range(0x01..=0x10u32) as u8; // opcodes + one invalid
            }
        }
        body
    })
}

#[test]
fn decoders_are_total_and_reencoding_is_stable() {
    check("decoders_are_total_and_reencoding_is_stable", bodies(), |body| {
        // Decoding random bytes must return, not panic. Anything that
        // decodes must re-encode to a stable canonical form.
        if let Ok(req) = Request::decode(body) {
            let wire = req.encode();
            let again = Request::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, req);
            assert_eq!(again.encode(), wire);
        }
        if let Ok(resp) = Response::decode(body) {
            let wire = resp.encode();
            let again = Response::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, resp);
            assert_eq!(again.encode(), wire);
        }
        // The v2 surfaces are total too, and anything that decodes as
        // a batch is already in canonical form (length-prefixed
        // canonical v1 sub-bodies), so re-encoding is the identity.
        let _ = WireRequest::decode(body);
        let _ = decode_batch_reply(body);
        if let Ok(reqs) = decode_batch(body) {
            assert_eq!(&encode_batch(&reqs), body);
            match WireRequest::decode(body).expect("batch dispatches") {
                WireRequest::Batch(again) => assert_eq!(again, reqs),
                WireRequest::Single(_) => panic!("v2 body dispatched as v1"),
            }
        }
    });
}

/// A grab-bag of requests covering every payload reader, built from a
/// generated ranking and name.
fn sample_requests() -> impl Gen<Value = Vec<Request>> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(1..=9usize);
        let ranking = gen::bucket_order(n, 3).generate(rng);
        let name = gen::printable_string(1..=12).generate(rng);
        vec![
            Request::Ping,
            Request::CreateSession {
                name: name.clone(),
                n: n as u32,
                policy: WirePolicy::Upper,
            },
            Request::PushVoter {
                session: name.clone(),
                ranking: ranking.clone(),
            },
            Request::ReplaceVoter {
                session: name.clone(),
                voter: rng.gen_range(0..u64::MAX),
                ranking,
            },
            Request::TopK {
                session: name.clone(),
                k: rng.gen_range(0..=64u32),
            },
            Request::WeightedDist {
                session: name.clone(),
                voter_a: rng.gen_range(0..u64::MAX),
                voter_b: rng.gen_range(0..u64::MAX),
                weights: (0..n).map(|_| rng.gen_range(0..=16u32) as u64).collect(),
            },
            Request::TopDiff {
                session: name.clone(),
                voter_a: rng.gen_range(0..u64::MAX),
                voter_b: rng.gen_range(0..u64::MAX),
                weights: (0..n).map(|_| rng.gen_range(0..=16u32) as u64).collect(),
            },
            Request::MinMaxAgg {
                session: name,
                labels: (0..n).map(|_| rng.gen_range(0..3u32)).collect(),
                rules: (0..rng.gen_range(0..=3usize))
                    .map(|_| WireRule {
                        window: rng.gen_range(1..=n as u32),
                        class: rng.gen_range(0..3u32),
                        min: 0,
                        max: rng.gen_range(0..=n as u32),
                    })
                    .collect(),
            },
            Request::Shutdown,
        ]
    })
}

#[test]
fn every_strict_prefix_and_trailing_byte_is_a_typed_error() {
    check(
        "every_strict_prefix_and_trailing_byte_is_a_typed_error",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let wire = req.encode();
                assert_eq!(&Request::decode(&wire).unwrap(), req);
                for cut in 0..wire.len() {
                    assert!(
                        Request::decode(&wire[..cut]).is_err(),
                        "prefix of {req:?} at {cut} decoded"
                    );
                }
                let mut extra = wire.clone();
                extra.push(0);
                assert!(
                    matches!(
                        Request::decode(&extra),
                        Err(ProtoError::TrailingBytes { .. })
                    ),
                    "trailing byte after {req:?} accepted"
                );
            }
        },
    );
}

#[test]
fn frames_reject_oversized_and_torn_input_without_allocating() {
    check(
        "frames_reject_oversized_and_torn_input_without_allocating",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let body = req.encode();
                // Round trip through a full frame.
                let mut wire = Vec::new();
                write_frame(&mut wire, &body, DEFAULT_MAX_FRAME).unwrap();
                let mut r = &wire[..];
                assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), body);
                // A torn frame (header promises more than the stream
                // holds) is an I/O error, not a hang or panic.
                for cut in 5..wire.len() {
                    let mut torn = &wire[..cut];
                    assert!(matches!(
                        read_frame(&mut torn, DEFAULT_MAX_FRAME),
                        Err(FrameError::Io(_))
                    ));
                }
                // An oversized declared length is rejected from the
                // 4-byte header alone — even when the declared size
                // (here 4 GiB) could never be allocated.
                let mut huge = u32::MAX.to_be_bytes().to_vec();
                huge.extend_from_slice(&body);
                let mut r = &huge[..];
                assert!(matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(FrameError::Proto(ProtoError::FrameTooLarge { .. }))
                ));
            }
        },
    );
}

/// Structured batch abuse: every strict prefix of a valid batch, every
/// degenerate shape (empty, oversized count, nested v2 sub-body,
/// lying sub-lengths), must be a **typed** error — and the count is
/// checked before any allocation sized from it.
#[test]
fn batch_bounds_are_typed_and_torn_batches_never_decode() {
    check(
        "batch_bounds_are_typed_and_torn_batches_never_decode",
        sample_requests(),
        |reqs| {
            let wire = encode_batch(reqs);
            assert_eq!(&decode_batch(&wire).unwrap(), reqs);
            // Torn batches: every strict prefix fails typed.
            for cut in 0..wire.len() {
                assert!(
                    decode_batch(&wire[..cut]).is_err(),
                    "batch prefix at {cut} decoded"
                );
            }
            // Trailing garbage is rejected.
            let mut extra = wire.clone();
            extra.push(0);
            assert!(decode_batch(&extra).is_err(), "trailing byte accepted");

            // Empty batch: typed.
            assert!(matches!(
                decode_batch(&[2, 0x20, 0, 0]),
                Err(ProtoError::EmptyBatch)
            ));

            // A count beyond MAX_BATCH is refused from the 4-byte
            // header alone — before any count-sized allocation.
            let huge = [2u8, 0x20, 0xff, 0xff];
            match decode_batch(&huge) {
                Err(ProtoError::BatchTooLarge { len }) => assert_eq!(len, 0xffff),
                other => panic!("oversized count not typed: {other:?}"),
            }

            // A sub-length lying past the body is a typed truncation,
            // not an allocation or a panic.
            let mut lying = vec![2, 0x20, 0, 1];
            lying.extend_from_slice(&u32::MAX.to_be_bytes());
            assert!(decode_batch(&lying).is_err());

            // Nested batches are rejected: a v2 sub-body inside a
            // batch is an unsupported version at the sub-decode.
            let inner = encode_batch(&[Request::Ping]);
            let mut nested = vec![2, 0x20, 0, 1];
            nested.extend_from_slice(&(inner.len() as u32).to_be_bytes());
            nested.extend_from_slice(&inner);
            match decode_batch(&nested) {
                Err(ProtoError::UnsupportedVersion { found }) => assert_eq!(found, 2),
                other => panic!("nested batch not rejected: {other:?}"),
            }

            // Oversize-by-construction: more than MAX_BATCH valid
            // sub-requests refuse to decode even though each sub-body
            // is individually fine.
            if reqs.len() > 1 {
                let mut many = vec![2, 0x20];
                let count = MAX_BATCH + 1;
                many.extend_from_slice(&(count as u16).to_be_bytes());
                let ping = Request::Ping.encode();
                for _ in 0..count {
                    many.extend_from_slice(&(ping.len() as u32).to_be_bytes());
                    many.extend_from_slice(&ping);
                }
                assert!(matches!(
                    decode_batch(&many),
                    Err(ProtoError::BatchTooLarge { .. })
                ));
            }
        },
    );
}

/// Random v1/v2 frame interleavings on one live connection: every
/// well-formed frame is answered with a reply of the matching shape
/// (v1 response / batch reply with one sub-reply per op), and a
/// malformed tail kills **only that connection** with a typed error —
/// never a desync or a panic — while the server keeps serving.
#[test]
fn v1_and_v2_interleavings_share_a_connection_and_die_typed() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    /// One fuzzed exchange: frames to send and the per-frame op count
    /// (0 marks a v1 single frame), plus a malformed tail body.
    fn exchanges() -> impl Gen<Value = (Vec<(Vec<u8>, usize)>, Vec<u8>)> {
        gen::from_fn(|rng| {
            let n = rng.gen_range(1..=6usize);
            let ranking = gen::bucket_order(n, 3).generate(rng);
            let name = gen::printable_string(1..=8).generate(rng);
            let pool = [
                Request::Ping,
                Request::CreateSession {
                    name: name.clone(),
                    n: n as u32,
                    policy: WirePolicy::Lower,
                },
                Request::PushVoter {
                    session: name.clone(),
                    ranking,
                },
                Request::MedianOrder {
                    session: name.clone(),
                },
                Request::TopK {
                    session: name,
                    k: rng.gen_range(0..=8u32),
                },
            ];
            let mut frames = Vec::new();
            for _ in 0..rng.gen_range(1..=8usize) {
                if rng.gen_range(0..2u32) == 0 {
                    let req = &pool[rng.gen_range(0..pool.len() as u32) as usize];
                    frames.push((req.encode(), 0));
                } else {
                    let count = rng.gen_range(1..=5usize);
                    let batch: Vec<Request> = (0..count)
                        .map(|_| pool[rng.gen_range(0..pool.len() as u32) as usize].clone())
                        .collect();
                    frames.push((encode_batch(&batch), count));
                }
            }
            // The malformed tail: rotate through the batch-specific
            // poison shapes plus plain junk.
            let tail = match rng.gen_range(0..4u32) {
                0 => vec![2, 0x20, 0, 0],          // empty batch
                1 => vec![2, 0x20, 0xff, 0xff],    // count over MAX_BATCH
                2 => {
                    let inner = encode_batch(&[Request::Ping]);
                    let mut nested = vec![2, 0x20, 0, 1];
                    nested.extend_from_slice(&(inner.len() as u32).to_be_bytes());
                    nested.extend_from_slice(&inner);
                    nested                          // nested batch
                }
                _ => vec![rng.gen_range(3..=255u32) as u8, 0x20, 9], // junk version
            };
            (frames, tail)
        })
    }

    check(
        "v1_and_v2_interleavings_share_a_connection_and_die_typed",
        exchanges(),
        |(frames, tail)| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            // Pipeline the whole interleaving, then the poison tail.
            for (body, _) in frames {
                write_frame(&mut s, body, DEFAULT_MAX_FRAME).expect("write frame");
            }
            write_frame(&mut s, tail, DEFAULT_MAX_FRAME).expect("write tail");

            // Every well-formed frame is answered in order with the
            // matching reply shape.
            for (at, (_, ops)) in frames.iter().enumerate() {
                let reply = read_frame(&mut s, DEFAULT_MAX_FRAME)
                    .unwrap_or_else(|e| panic!("reply {at} missing: {e:?}"));
                if *ops == 0 {
                    Response::decode(&reply).expect("well-formed v1 reply");
                } else {
                    let bodies = decode_batch_reply(&reply).expect("well-formed batch reply");
                    assert_eq!(bodies.len(), *ops, "reply shape mismatch at {at}");
                    for body in &bodies {
                        Response::decode(body).expect("well-formed sub-reply");
                    }
                }
            }
            // Then the typed error (best-effort) and the close.
            match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                Ok(reply) => {
                    let resp = Response::decode(&reply).expect("server replies are well-formed");
                    assert!(
                        matches!(
                            resp,
                            Response::Error {
                                code: ErrorCode::BadRequest,
                                ..
                            }
                        ),
                        "malformed tail answered with {resp:?}"
                    );
                    assert!(matches!(
                        read_frame(&mut s, DEFAULT_MAX_FRAME),
                        Err(FrameError::Closed)
                    ));
                }
                Err(FrameError::Closed) => {}
                Err(e) => panic!("unexpected transport failure: {e:?}"),
            }

            // The server is still serving fresh connections.
            let mut probe = Client::connect(addr).unwrap();
            probe.ping().expect("server must survive poisoned pipelines");
        },
    );

    let stats = server.shutdown();
    assert!(
        stats.protocol_errors > 0,
        "every poison tail trips the protocol-error counter: {stats:?}"
    );
}

#[test]
fn malformed_streams_fail_the_connection_not_the_server() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    check(
        "malformed_streams_fail_the_connection_not_the_server",
        bodies(),
        |body| {
            // A random body inside a well-formed frame: the server
            // either answers a decoded request, or replies with one
            // typed protocol error and closes this connection.
            match Request::decode(body) {
                Ok(Request::Shutdown) => {} // don't stop the shared server
                Ok(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    let reply = read_frame(&mut s, DEFAULT_MAX_FRAME).expect("reply");
                    Response::decode(&reply).expect("server replies are well-formed");
                }
                Err(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                        Ok(reply) => {
                            let resp =
                                Response::decode(&reply).expect("server replies are well-formed");
                            assert!(
                                matches!(
                                    resp,
                                    Response::Error {
                                        code: ErrorCode::BadRequest,
                                        ..
                                    }
                                ),
                                "undecodable body answered with {resp:?}"
                            );
                            // ... and then the connection dies.
                            assert!(matches!(
                                read_frame(&mut s, DEFAULT_MAX_FRAME),
                                Err(FrameError::Closed)
                            ));
                        }
                        // Best-effort error reply may be skipped; the
                        // close itself is the contract.
                        Err(FrameError::Closed) => {}
                        Err(e) => panic!("unexpected transport failure: {e:?}"),
                    }
                }
            }

            // Raw unframed garbage, then a hangup: the server must
            // shrug the connection off.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(body).unwrap();
            drop(s);

            // The server is still serving fresh connections.
            let mut probe = Client::connect(addr).unwrap();
            probe.ping().expect("server must survive malformed peers");
        },
    );

    // An oversized declared frame length kills that connection too.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    s.flush().unwrap();
    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
        Ok(reply) => {
            assert!(matches!(
                Response::decode(&reply).expect("well-formed reply"),
                Response::Error { .. }
            ));
        }
        Err(FrameError::Closed) => {}
        Err(e) => panic!("unexpected transport failure: {e:?}"),
    }

    let mut probe = Client::connect(addr).unwrap();
    probe.ping().expect("server must survive an oversized frame");
    let stats = server.shutdown();
    assert!(
        stats.protocol_errors > 0,
        "the fuzz run should have tripped the protocol-error counter: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// WAL-record fuzzing: the durability codecs (`server::wal`) get the
// same treatment as the wire protocol — random bytes must scan and
// decode to typed errors or valid values, never a panic; lying length
// prefixes, bit-flipped CRCs and truncated tails must truncate the
// scan at the fault; and recovery through a real `Service` must never
// replay past a duplicate-create or otherwise faulty record.


use bucketrank::server::service::{Service, ServiceConfig};
use bucketrank::server::wal::{self, Checkpoint, WalRecord, WalWriter};
use bucketrank::server::{WalError, WalOp};
use bucketrank_core::BucketOrder;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "bucketrank-walfuzz-{}-{id}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Random WAL-body-ish bytes. Half the time the bytes are wrapped in a
/// valid `len | crc | body` frame so the scanner's CRC gate passes and
/// the record *body* decoder gets exercised; within those, the opcode
/// byte is often steered onto the real WAL opcodes (plus one invalid).
fn wal_bodies() -> impl Gen<Value = Vec<u8>> {
    gen::from_fn(|rng| {
        let len = rng.gen_range(0..=96usize);
        let mut body: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        if body.len() >= 9 && rng.gen_range(0..2u32) == 0 {
            body[8] = rng.gen_range(1..=6u32) as u8; // WAL opcodes + one invalid
        }
        if rng.gen_range(0..2u32) == 0 {
            let mut framed = Vec::with_capacity(8 + body.len());
            framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
            framed.extend_from_slice(&wal::crc32(&body).to_be_bytes());
            framed.extend_from_slice(&body);
            return framed;
        }
        body
    })
}

/// A short, internally consistent WAL: one session, sequential seqs,
/// a mix of every op kind.
fn wal_record_logs() -> impl Gen<Value = Vec<WalRecord>> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(1..=8usize);
        let name = gen::printable_string(1..=12).generate(rng);
        let count = rng.gen_range(1..=6usize);
        let mut records = Vec::with_capacity(count);
        for seq in 0..count as u64 {
            let op = match rng.gen_range(0..5u32) {
                0 => WalOp::Create {
                    name: name.clone(),
                    n: n as u32,
                    policy: WirePolicy::Lower,
                },
                1 => WalOp::Push {
                    name: name.clone(),
                    voter: rng.gen_range(0..1u64 << 48),
                    ranking: gen::bucket_order(n, 3).generate(rng),
                },
                2 => WalOp::Remove {
                    name: name.clone(),
                    voter: rng.gen_range(0..1u64 << 48),
                },
                3 => WalOp::Replace {
                    name: name.clone(),
                    voter: rng.gen_range(0..1u64 << 48),
                    ranking: gen::bucket_order(n, 3).generate(rng),
                },
                _ => WalOp::Drop { name: name.clone() },
            };
            records.push(WalRecord { seq, op });
        }
        records
    })
}

#[test]
fn wal_decoders_are_total_and_scans_are_stable() {
    check(
        "wal_decoders_are_total_and_scans_are_stable",
        wal_bodies(),
        |body| {
            // Every WAL decoder must return on arbitrary bytes, never
            // panic.
            let _ = WalRecord::decode_body(body);
            let _ = Checkpoint::decode(body);
            let scan = wal::scan_bytes(body);
            assert!(scan.valid_len <= body.len() as u64);
            // Whatever scanned is real: re-encoding the scanned prefix
            // and re-scanning it reproduces the same records, cleanly.
            let again: Vec<u8> = scan.records.iter().flat_map(|r| r.encode()).collect();
            let rescan = wal::scan_bytes(&again);
            assert_eq!(rescan.records, scan.records);
            assert_eq!(rescan.valid_len, again.len() as u64);
            assert!(rescan.corruption.is_none());
        },
    );
}

#[test]
fn wal_scans_stop_typed_at_the_first_fault() {
    check(
        "wal_scans_stop_typed_at_the_first_fault",
        wal_record_logs(),
        |records| {
            let mut clean = Vec::new();
            let mut bounds = vec![0usize];
            for rec in records {
                clean.extend_from_slice(&rec.encode());
                bounds.push(clean.len());
            }
            // The untouched log scans completely and cleanly.
            let full = wal::scan_bytes(&clean);
            assert_eq!(&full.records, records);
            assert_eq!(full.valid_len, clean.len() as u64);
            assert!(full.corruption.is_none());

            // Truncated tails: every strict cut keeps exactly the
            // records whose frames still fit, and a cut inside a frame
            // is a typed fault at that frame's offset.
            for cut in 0..clean.len() {
                let scan = wal::scan_bytes(&clean[..cut]);
                let survivors = bounds[1..].iter().filter(|&&b| b <= cut).count();
                assert_eq!(scan.records, records[..survivors]);
                assert_eq!(scan.valid_len, bounds[survivors] as u64);
                if cut == bounds[survivors] {
                    assert!(scan.corruption.is_none());
                } else {
                    assert!(
                        matches!(
                            scan.corruption,
                            Some(WalError::TornTail { at, .. }) if at == bounds[survivors] as u64
                        ),
                        "cut {cut} gave {:?}",
                        scan.corruption
                    );
                }
            }

            // Bit flips: flipping any single bit of record `j` — length
            // prefix, CRC, or body — truncates the scan to exactly the
            // first `j` records with a typed fault at `j`'s offset.
            for (j, window) in bounds.windows(2).enumerate() {
                for at in window[0]..window[1] {
                    for bit in 0..8u8 {
                        let mut bent = clean.clone();
                        bent[at] ^= 1 << bit;
                        let scan = wal::scan_bytes(&bent);
                        assert_eq!(
                            scan.records,
                            records[..j],
                            "flip at byte {at} bit {bit} changed the surviving prefix"
                        );
                        assert_eq!(scan.valid_len, bounds[j] as u64);
                        assert!(scan.corruption.is_some());
                    }
                }
            }

            // A lying length prefix: claiming more than the bound is
            // typed as oversized; claiming one byte past the file is a
            // torn tail. Neither panics, both keep the earlier records.
            let last = bounds.len() - 2;
            for (lie, want_oversize) in [
                ((wal::MAX_WAL_RECORD + 1) as u32, true),
                ((clean.len() - bounds[last]) as u32, false),
            ] {
                let mut bent = clean.clone();
                bent[bounds[last]..bounds[last] + 4].copy_from_slice(&lie.to_be_bytes());
                let scan = wal::scan_bytes(&bent);
                assert_eq!(scan.records, records[..last]);
                match (want_oversize, scan.corruption) {
                    (true, Some(WalError::RecordTooLarge { at, .. }))
                    | (false, Some(WalError::TornTail { at, .. })) => {
                        assert_eq!(at, bounds[last] as u64);
                    }
                    (_, other) => panic!("lying length gave {other:?}"),
                }
            }
        },
    );
}

/// A checkpoint with a handful of voters over a small domain.
fn checkpoints() -> impl Gen<Value = Checkpoint> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(1..=8usize);
        let count = rng.gen_range(0..=5usize);
        let voters: Vec<(u64, BucketOrder)> = (0..count)
            .map(|i| (i as u64 * 3, gen::bucket_order(n, 3).generate(rng)))
            .collect();
        Checkpoint {
            name: gen::printable_string(1..=12).generate(rng),
            n: n as u32,
            policy: if rng.gen_range(0..2u32) == 0 {
                WirePolicy::Lower
            } else {
                WirePolicy::Upper
            },
            next_id: rng.gen_range(0..u64::MAX >> 16),
            last_seq: rng.gen_range(0..u64::MAX >> 16),
            voters,
        }
    })
}

#[test]
fn checkpoint_codec_roundtrips_and_rejects_every_mutation_typed() {
    check(
        "checkpoint_codec_roundtrips_and_rejects_every_mutation_typed",
        checkpoints(),
        |ck| {
            let bytes = ck.encode();
            assert_eq!(&Checkpoint::decode(&bytes).expect("roundtrip"), ck);

            // Every strict prefix is typed (a torn checkpoint file).
            for cut in 0..bytes.len() {
                Checkpoint::decode(&bytes[..cut]).expect_err("prefix decoded");
            }

            // Trailing bytes are rejected — a checkpoint file holds
            // exactly one frame.
            let mut extra = bytes.clone();
            extra.push(0);
            assert!(matches!(
                Checkpoint::decode(&extra),
                Err(WalError::Malformed { .. })
            ));

            // Any single-bit flip anywhere in the file is caught: the
            // CRC covers the body, and the frame header is validated
            // against the file's real length.
            for at in 0..bytes.len() {
                for bit in 0..8u8 {
                    let mut bent = bytes.clone();
                    bent[at] ^= 1 << bit;
                    Checkpoint::decode(&bent)
                        .expect_err("bit-flipped checkpoint decoded");
                }
            }
        },
    );
}

/// Writes `records` as shard 0's WAL under a fresh data dir and
/// recovers a single-shard durable [`Service`] from it.
fn recover(dir: &TempDir, records: &[WalRecord]) -> Service {
    let shard = dir.0.join("shard-0");
    std::fs::create_dir_all(&shard).expect("create shard dir");
    let mut w = WalWriter::open(&shard.join("wal.log")).expect("open wal");
    for rec in records {
        w.append(rec).expect("append");
    }
    drop(w);
    Service::with_config(ServiceConfig {
        shards: 1,
        max_sessions: 64,
        data_dir: Some(dir.0.clone()),
        checkpoint_every: u64::MAX,
    })
    .expect("recovery must not fail on a faulty log, only truncate")
}

#[test]
fn recovery_never_replays_past_a_faulty_record() {
    check(
        "recovery_never_replays_past_a_faulty_record",
        gen::from_fn(|rng| {
            let n = rng.gen_range(2..=6usize);
            let rankings: Vec<BucketOrder> = (0..rng.gen_range(2..=4usize))
                .map(|_| gen::bucket_order(n, 3).generate(rng))
                .collect();
            (n, rankings)
        }),
        |(n, rankings)| {
            let name = "dup".to_string();
            let k = rankings.len() - 1;

            // A log whose record `k + 1` re-creates the live session:
            // replay must stop there, typed — the pushes before the
            // fault survive, the push after it must NOT be applied.
            let mut records = vec![WalRecord {
                seq: 0,
                op: WalOp::Create {
                    name: name.clone(),
                    n: *n as u32,
                    policy: WirePolicy::Lower,
                },
            }];
            for (i, r) in rankings[..k].iter().enumerate() {
                records.push(WalRecord {
                    seq: 1 + i as u64,
                    op: WalOp::Push {
                        name: name.clone(),
                        voter: i as u64,
                        ranking: r.clone(),
                    },
                });
            }
            records.push(WalRecord {
                seq: 1 + k as u64,
                op: WalOp::Create {
                    name: name.clone(),
                    n: *n as u32,
                    policy: WirePolicy::Lower,
                },
            });
            records.push(WalRecord {
                seq: 2 + k as u64,
                op: WalOp::Push {
                    name: name.clone(),
                    voter: 1000, // a lie; must never be replayed
                    ranking: rankings[k].clone(),
                },
            });

            let dir = TempDir::new();
            let recovered = recover(&dir, &records);

            // A memory-only mirror of exactly the pre-fault prefix.
            let mirror = Service::new(64);
            mirror.handle(Request::CreateSession {
                name: name.clone(),
                n: *n as u32,
                policy: WirePolicy::Lower,
            });
            for r in &rankings[..k] {
                mirror.handle(Request::PushVoter {
                    session: name.clone(),
                    ranking: r.clone(),
                });
            }
            for probe in [
                Request::MedianOrder { session: name.clone() },
                Request::TopK {
                    session: name.clone(),
                    k: 1,
                },
            ] {
                assert_eq!(
                    recovered.handle(probe.clone()).encode(),
                    mirror.handle(probe).encode(),
                    "recovered state diverges from the pre-fault prefix"
                );
            }
            // The next push id proves the post-fault push never
            // happened: ids are issued sequentially per session.
            assert_eq!(
                recovered.handle(Request::PushVoter {
                    session: name.clone(),
                    ranking: rankings[k].clone(),
                }),
                Response::VoterPushed { voter: k as u64 },
            );

            // A log editing a session no record created: replay stops
            // typed at the unknown name, the earlier session survives.
            let records = vec![
                WalRecord {
                    seq: 0,
                    op: WalOp::Create {
                        name: name.clone(),
                        n: *n as u32,
                        policy: WirePolicy::Lower,
                    },
                },
                WalRecord {
                    seq: 1,
                    op: WalOp::Push {
                        name: "ghost".to_string(),
                        voter: 0,
                        ranking: rankings[0].clone(),
                    },
                },
            ];
            let dir = TempDir::new();
            let recovered = recover(&dir, &records);
            assert_eq!(recovered.sessions(), 1);
            assert!(matches!(
                recovered.handle(Request::MedianOrder {
                    session: "ghost".to_string()
                }),
                Response::Error {
                    code: ErrorCode::UnknownSession,
                    ..
                }
            ));
            // The created session exists (and is empty: NoVoters).
            assert!(matches!(
                recovered.handle(Request::MedianOrder { session: name.clone() }),
                Response::Error {
                    code: ErrorCode::NoVoters,
                    ..
                }
            ));
        },
    );
}
