//! Testkit-driven fuzz suite for the wire protocol (`server::proto`)
//! and its transport: random byte bodies must decode to typed errors
//! or valid values — never a panic — every strict prefix of a valid
//! encoding must be a typed error, trailing bytes must be rejected,
//! and over a live socket a malformed stream must kill only the
//! offending **connection** while the server keeps serving.

use bucketrank::server::proto::{
    read_frame, write_frame, FrameError, ProtoError, Request, Response, WirePolicy,
    DEFAULT_MAX_FRAME,
};
use bucketrank::server::{Client, ErrorCode, Server, ServerConfig};
use bucketrank_testkit::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;

/// Random request-ish bodies: raw bytes, plus mutations that keep a
/// valid opcode so decoding reaches the payload readers.
fn bodies() -> impl Gen<Value = Vec<u8>> {
    gen::from_fn(|rng| {
        let len = rng.gen_range(0..=96usize);
        let mut body: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        // Half the time, steer onto the parsers behind valid headers.
        if rng.gen_range(0..2u32) == 0 && body.len() >= 2 {
            body[0] = 1; // PROTO_VERSION
            body[1] = rng.gen_range(0x01..=0x0cu32) as u8; // opcodes + one invalid
        }
        body
    })
}

#[test]
fn decoders_are_total_and_reencoding_is_stable() {
    check("decoders_are_total_and_reencoding_is_stable", bodies(), |body| {
        // Decoding random bytes must return, not panic. Anything that
        // decodes must re-encode to a stable canonical form.
        if let Ok(req) = Request::decode(body) {
            let wire = req.encode();
            let again = Request::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, req);
            assert_eq!(again.encode(), wire);
        }
        if let Ok(resp) = Response::decode(body) {
            let wire = resp.encode();
            let again = Response::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, resp);
            assert_eq!(again.encode(), wire);
        }
    });
}

/// A grab-bag of requests covering every payload reader, built from a
/// generated ranking and name.
fn sample_requests() -> impl Gen<Value = Vec<Request>> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(1..=9usize);
        let ranking = gen::bucket_order(n, 3).generate(rng);
        let name = gen::printable_string(1..=12).generate(rng);
        vec![
            Request::Ping,
            Request::CreateSession {
                name: name.clone(),
                n: n as u32,
                policy: WirePolicy::Upper,
            },
            Request::PushVoter {
                session: name.clone(),
                ranking: ranking.clone(),
            },
            Request::ReplaceVoter {
                session: name.clone(),
                voter: rng.gen_range(0..u64::MAX),
                ranking,
            },
            Request::TopK {
                session: name,
                k: rng.gen_range(0..=64u32),
            },
            Request::Shutdown,
        ]
    })
}

#[test]
fn every_strict_prefix_and_trailing_byte_is_a_typed_error() {
    check(
        "every_strict_prefix_and_trailing_byte_is_a_typed_error",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let wire = req.encode();
                assert_eq!(&Request::decode(&wire).unwrap(), req);
                for cut in 0..wire.len() {
                    assert!(
                        Request::decode(&wire[..cut]).is_err(),
                        "prefix of {req:?} at {cut} decoded"
                    );
                }
                let mut extra = wire.clone();
                extra.push(0);
                assert!(
                    matches!(
                        Request::decode(&extra),
                        Err(ProtoError::TrailingBytes { .. })
                    ),
                    "trailing byte after {req:?} accepted"
                );
            }
        },
    );
}

#[test]
fn frames_reject_oversized_and_torn_input_without_allocating() {
    check(
        "frames_reject_oversized_and_torn_input_without_allocating",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let body = req.encode();
                // Round trip through a full frame.
                let mut wire = Vec::new();
                write_frame(&mut wire, &body, DEFAULT_MAX_FRAME).unwrap();
                let mut r = &wire[..];
                assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), body);
                // A torn frame (header promises more than the stream
                // holds) is an I/O error, not a hang or panic.
                for cut in 5..wire.len() {
                    let mut torn = &wire[..cut];
                    assert!(matches!(
                        read_frame(&mut torn, DEFAULT_MAX_FRAME),
                        Err(FrameError::Io(_))
                    ));
                }
                // An oversized declared length is rejected from the
                // 4-byte header alone — even when the declared size
                // (here 4 GiB) could never be allocated.
                let mut huge = u32::MAX.to_be_bytes().to_vec();
                huge.extend_from_slice(&body);
                let mut r = &huge[..];
                assert!(matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(FrameError::Proto(ProtoError::FrameTooLarge { .. }))
                ));
            }
        },
    );
}

#[test]
fn malformed_streams_fail_the_connection_not_the_server() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    check(
        "malformed_streams_fail_the_connection_not_the_server",
        bodies(),
        |body| {
            // A random body inside a well-formed frame: the server
            // either answers a decoded request, or replies with one
            // typed protocol error and closes this connection.
            match Request::decode(body) {
                Ok(Request::Shutdown) => {} // don't stop the shared server
                Ok(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    let reply = read_frame(&mut s, DEFAULT_MAX_FRAME).expect("reply");
                    Response::decode(&reply).expect("server replies are well-formed");
                }
                Err(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                        Ok(reply) => {
                            let resp =
                                Response::decode(&reply).expect("server replies are well-formed");
                            assert!(
                                matches!(
                                    resp,
                                    Response::Error {
                                        code: ErrorCode::BadRequest,
                                        ..
                                    }
                                ),
                                "undecodable body answered with {resp:?}"
                            );
                            // ... and then the connection dies.
                            assert!(matches!(
                                read_frame(&mut s, DEFAULT_MAX_FRAME),
                                Err(FrameError::Closed)
                            ));
                        }
                        // Best-effort error reply may be skipped; the
                        // close itself is the contract.
                        Err(FrameError::Closed) => {}
                        Err(e) => panic!("unexpected transport failure: {e:?}"),
                    }
                }
            }

            // Raw unframed garbage, then a hangup: the server must
            // shrug the connection off.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(body).unwrap();
            drop(s);

            // The server is still serving fresh connections.
            let mut probe = Client::connect(addr).unwrap();
            probe.ping().expect("server must survive malformed peers");
        },
    );

    // An oversized declared frame length kills that connection too.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    s.flush().unwrap();
    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
        Ok(reply) => {
            assert!(matches!(
                Response::decode(&reply).expect("well-formed reply"),
                Response::Error { .. }
            ));
        }
        Err(FrameError::Closed) => {}
        Err(e) => panic!("unexpected transport failure: {e:?}"),
    }

    let mut probe = Client::connect(addr).unwrap();
    probe.ping().expect("server must survive an oversized frame");
    let stats = server.shutdown();
    assert!(
        stats.protocol_errors > 0,
        "the fuzz run should have tripped the protocol-error counter: {stats:?}"
    );
}
