//! Testkit-driven fuzz suite for the wire protocol (`server::proto`)
//! and its transport: random byte bodies must decode to typed errors
//! or valid values — never a panic — every strict prefix of a valid
//! encoding must be a typed error, trailing bytes must be rejected,
//! and over a live socket a malformed stream must kill only the
//! offending **connection** while the server keeps serving.

use bucketrank::server::proto::{
    decode_batch, decode_batch_reply, encode_batch, read_frame, write_frame, FrameError,
    ProtoError, Request, Response, WirePolicy, WireRequest, DEFAULT_MAX_FRAME, MAX_BATCH,
};
use bucketrank::server::{Client, ErrorCode, Server, ServerConfig};
use bucketrank_testkit::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;

/// Random request-ish bodies: raw bytes, plus mutations that keep a
/// valid opcode so decoding reaches the payload readers. A third of
/// the steered bodies wear the v2 batch header so the batch decoder's
/// count and sub-length readers get fuzzed too.
fn bodies() -> impl Gen<Value = Vec<u8>> {
    gen::from_fn(|rng| {
        let len = rng.gen_range(0..=96usize);
        let mut body: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        // Half the time, steer onto the parsers behind valid headers.
        if rng.gen_range(0..2u32) == 0 && body.len() >= 2 {
            if rng.gen_range(0..3u32) == 0 {
                body[0] = 2; // PROTO_VERSION_2
                body[1] = 0x20; // OP_BATCH
            } else {
                body[0] = 1; // PROTO_VERSION
                body[1] = rng.gen_range(0x01..=0x0cu32) as u8; // opcodes + one invalid
            }
        }
        body
    })
}

#[test]
fn decoders_are_total_and_reencoding_is_stable() {
    check("decoders_are_total_and_reencoding_is_stable", bodies(), |body| {
        // Decoding random bytes must return, not panic. Anything that
        // decodes must re-encode to a stable canonical form.
        if let Ok(req) = Request::decode(body) {
            let wire = req.encode();
            let again = Request::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, req);
            assert_eq!(again.encode(), wire);
        }
        if let Ok(resp) = Response::decode(body) {
            let wire = resp.encode();
            let again = Response::decode(&wire).expect("canonical encoding must decode");
            assert_eq!(again, resp);
            assert_eq!(again.encode(), wire);
        }
        // The v2 surfaces are total too, and anything that decodes as
        // a batch is already in canonical form (length-prefixed
        // canonical v1 sub-bodies), so re-encoding is the identity.
        let _ = WireRequest::decode(body);
        let _ = decode_batch_reply(body);
        if let Ok(reqs) = decode_batch(body) {
            assert_eq!(&encode_batch(&reqs), body);
            match WireRequest::decode(body).expect("batch dispatches") {
                WireRequest::Batch(again) => assert_eq!(again, reqs),
                WireRequest::Single(_) => panic!("v2 body dispatched as v1"),
            }
        }
    });
}

/// A grab-bag of requests covering every payload reader, built from a
/// generated ranking and name.
fn sample_requests() -> impl Gen<Value = Vec<Request>> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(1..=9usize);
        let ranking = gen::bucket_order(n, 3).generate(rng);
        let name = gen::printable_string(1..=12).generate(rng);
        vec![
            Request::Ping,
            Request::CreateSession {
                name: name.clone(),
                n: n as u32,
                policy: WirePolicy::Upper,
            },
            Request::PushVoter {
                session: name.clone(),
                ranking: ranking.clone(),
            },
            Request::ReplaceVoter {
                session: name.clone(),
                voter: rng.gen_range(0..u64::MAX),
                ranking,
            },
            Request::TopK {
                session: name,
                k: rng.gen_range(0..=64u32),
            },
            Request::Shutdown,
        ]
    })
}

#[test]
fn every_strict_prefix_and_trailing_byte_is_a_typed_error() {
    check(
        "every_strict_prefix_and_trailing_byte_is_a_typed_error",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let wire = req.encode();
                assert_eq!(&Request::decode(&wire).unwrap(), req);
                for cut in 0..wire.len() {
                    assert!(
                        Request::decode(&wire[..cut]).is_err(),
                        "prefix of {req:?} at {cut} decoded"
                    );
                }
                let mut extra = wire.clone();
                extra.push(0);
                assert!(
                    matches!(
                        Request::decode(&extra),
                        Err(ProtoError::TrailingBytes { .. })
                    ),
                    "trailing byte after {req:?} accepted"
                );
            }
        },
    );
}

#[test]
fn frames_reject_oversized_and_torn_input_without_allocating() {
    check(
        "frames_reject_oversized_and_torn_input_without_allocating",
        sample_requests(),
        |reqs| {
            for req in reqs {
                let body = req.encode();
                // Round trip through a full frame.
                let mut wire = Vec::new();
                write_frame(&mut wire, &body, DEFAULT_MAX_FRAME).unwrap();
                let mut r = &wire[..];
                assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), body);
                // A torn frame (header promises more than the stream
                // holds) is an I/O error, not a hang or panic.
                for cut in 5..wire.len() {
                    let mut torn = &wire[..cut];
                    assert!(matches!(
                        read_frame(&mut torn, DEFAULT_MAX_FRAME),
                        Err(FrameError::Io(_))
                    ));
                }
                // An oversized declared length is rejected from the
                // 4-byte header alone — even when the declared size
                // (here 4 GiB) could never be allocated.
                let mut huge = u32::MAX.to_be_bytes().to_vec();
                huge.extend_from_slice(&body);
                let mut r = &huge[..];
                assert!(matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(FrameError::Proto(ProtoError::FrameTooLarge { .. }))
                ));
            }
        },
    );
}

/// Structured batch abuse: every strict prefix of a valid batch, every
/// degenerate shape (empty, oversized count, nested v2 sub-body,
/// lying sub-lengths), must be a **typed** error — and the count is
/// checked before any allocation sized from it.
#[test]
fn batch_bounds_are_typed_and_torn_batches_never_decode() {
    check(
        "batch_bounds_are_typed_and_torn_batches_never_decode",
        sample_requests(),
        |reqs| {
            let wire = encode_batch(reqs);
            assert_eq!(&decode_batch(&wire).unwrap(), reqs);
            // Torn batches: every strict prefix fails typed.
            for cut in 0..wire.len() {
                assert!(
                    decode_batch(&wire[..cut]).is_err(),
                    "batch prefix at {cut} decoded"
                );
            }
            // Trailing garbage is rejected.
            let mut extra = wire.clone();
            extra.push(0);
            assert!(decode_batch(&extra).is_err(), "trailing byte accepted");

            // Empty batch: typed.
            assert!(matches!(
                decode_batch(&[2, 0x20, 0, 0]),
                Err(ProtoError::EmptyBatch)
            ));

            // A count beyond MAX_BATCH is refused from the 4-byte
            // header alone — before any count-sized allocation.
            let huge = [2u8, 0x20, 0xff, 0xff];
            match decode_batch(&huge) {
                Err(ProtoError::BatchTooLarge { len }) => assert_eq!(len, 0xffff),
                other => panic!("oversized count not typed: {other:?}"),
            }

            // A sub-length lying past the body is a typed truncation,
            // not an allocation or a panic.
            let mut lying = vec![2, 0x20, 0, 1];
            lying.extend_from_slice(&u32::MAX.to_be_bytes());
            assert!(decode_batch(&lying).is_err());

            // Nested batches are rejected: a v2 sub-body inside a
            // batch is an unsupported version at the sub-decode.
            let inner = encode_batch(&[Request::Ping]);
            let mut nested = vec![2, 0x20, 0, 1];
            nested.extend_from_slice(&(inner.len() as u32).to_be_bytes());
            nested.extend_from_slice(&inner);
            match decode_batch(&nested) {
                Err(ProtoError::UnsupportedVersion { found }) => assert_eq!(found, 2),
                other => panic!("nested batch not rejected: {other:?}"),
            }

            // Oversize-by-construction: more than MAX_BATCH valid
            // sub-requests refuse to decode even though each sub-body
            // is individually fine.
            if reqs.len() > 1 {
                let mut many = vec![2, 0x20];
                let count = MAX_BATCH + 1;
                many.extend_from_slice(&(count as u16).to_be_bytes());
                let ping = Request::Ping.encode();
                for _ in 0..count {
                    many.extend_from_slice(&(ping.len() as u32).to_be_bytes());
                    many.extend_from_slice(&ping);
                }
                assert!(matches!(
                    decode_batch(&many),
                    Err(ProtoError::BatchTooLarge { .. })
                ));
            }
        },
    );
}

/// Random v1/v2 frame interleavings on one live connection: every
/// well-formed frame is answered with a reply of the matching shape
/// (v1 response / batch reply with one sub-reply per op), and a
/// malformed tail kills **only that connection** with a typed error —
/// never a desync or a panic — while the server keeps serving.
#[test]
fn v1_and_v2_interleavings_share_a_connection_and_die_typed() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    /// One fuzzed exchange: frames to send and the per-frame op count
    /// (0 marks a v1 single frame), plus a malformed tail body.
    fn exchanges() -> impl Gen<Value = (Vec<(Vec<u8>, usize)>, Vec<u8>)> {
        gen::from_fn(|rng| {
            let n = rng.gen_range(1..=6usize);
            let ranking = gen::bucket_order(n, 3).generate(rng);
            let name = gen::printable_string(1..=8).generate(rng);
            let pool = [
                Request::Ping,
                Request::CreateSession {
                    name: name.clone(),
                    n: n as u32,
                    policy: WirePolicy::Lower,
                },
                Request::PushVoter {
                    session: name.clone(),
                    ranking,
                },
                Request::MedianOrder {
                    session: name.clone(),
                },
                Request::TopK {
                    session: name,
                    k: rng.gen_range(0..=8u32),
                },
            ];
            let mut frames = Vec::new();
            for _ in 0..rng.gen_range(1..=8usize) {
                if rng.gen_range(0..2u32) == 0 {
                    let req = &pool[rng.gen_range(0..pool.len() as u32) as usize];
                    frames.push((req.encode(), 0));
                } else {
                    let count = rng.gen_range(1..=5usize);
                    let batch: Vec<Request> = (0..count)
                        .map(|_| pool[rng.gen_range(0..pool.len() as u32) as usize].clone())
                        .collect();
                    frames.push((encode_batch(&batch), count));
                }
            }
            // The malformed tail: rotate through the batch-specific
            // poison shapes plus plain junk.
            let tail = match rng.gen_range(0..4u32) {
                0 => vec![2, 0x20, 0, 0],          // empty batch
                1 => vec![2, 0x20, 0xff, 0xff],    // count over MAX_BATCH
                2 => {
                    let inner = encode_batch(&[Request::Ping]);
                    let mut nested = vec![2, 0x20, 0, 1];
                    nested.extend_from_slice(&(inner.len() as u32).to_be_bytes());
                    nested.extend_from_slice(&inner);
                    nested                          // nested batch
                }
                _ => vec![rng.gen_range(3..=255u32) as u8, 0x20, 9], // junk version
            };
            (frames, tail)
        })
    }

    check(
        "v1_and_v2_interleavings_share_a_connection_and_die_typed",
        exchanges(),
        |(frames, tail)| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            // Pipeline the whole interleaving, then the poison tail.
            for (body, _) in frames {
                write_frame(&mut s, body, DEFAULT_MAX_FRAME).expect("write frame");
            }
            write_frame(&mut s, tail, DEFAULT_MAX_FRAME).expect("write tail");

            // Every well-formed frame is answered in order with the
            // matching reply shape.
            for (at, (_, ops)) in frames.iter().enumerate() {
                let reply = read_frame(&mut s, DEFAULT_MAX_FRAME)
                    .unwrap_or_else(|e| panic!("reply {at} missing: {e:?}"));
                if *ops == 0 {
                    Response::decode(&reply).expect("well-formed v1 reply");
                } else {
                    let bodies = decode_batch_reply(&reply).expect("well-formed batch reply");
                    assert_eq!(bodies.len(), *ops, "reply shape mismatch at {at}");
                    for body in &bodies {
                        Response::decode(body).expect("well-formed sub-reply");
                    }
                }
            }
            // Then the typed error (best-effort) and the close.
            match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                Ok(reply) => {
                    let resp = Response::decode(&reply).expect("server replies are well-formed");
                    assert!(
                        matches!(
                            resp,
                            Response::Error {
                                code: ErrorCode::BadRequest,
                                ..
                            }
                        ),
                        "malformed tail answered with {resp:?}"
                    );
                    assert!(matches!(
                        read_frame(&mut s, DEFAULT_MAX_FRAME),
                        Err(FrameError::Closed)
                    ));
                }
                Err(FrameError::Closed) => {}
                Err(e) => panic!("unexpected transport failure: {e:?}"),
            }

            // The server is still serving fresh connections.
            let mut probe = Client::connect(addr).unwrap();
            probe.ping().expect("server must survive poisoned pipelines");
        },
    );

    let stats = server.shutdown();
    assert!(
        stats.protocol_errors > 0,
        "every poison tail trips the protocol-error counter: {stats:?}"
    );
}

#[test]
fn malformed_streams_fail_the_connection_not_the_server() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    check(
        "malformed_streams_fail_the_connection_not_the_server",
        bodies(),
        |body| {
            // A random body inside a well-formed frame: the server
            // either answers a decoded request, or replies with one
            // typed protocol error and closes this connection.
            match Request::decode(body) {
                Ok(Request::Shutdown) => {} // don't stop the shared server
                Ok(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    let reply = read_frame(&mut s, DEFAULT_MAX_FRAME).expect("reply");
                    Response::decode(&reply).expect("server replies are well-formed");
                }
                Err(_) => {
                    let mut s = TcpStream::connect(addr).unwrap();
                    write_frame(&mut s, body, DEFAULT_MAX_FRAME).unwrap();
                    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                        Ok(reply) => {
                            let resp =
                                Response::decode(&reply).expect("server replies are well-formed");
                            assert!(
                                matches!(
                                    resp,
                                    Response::Error {
                                        code: ErrorCode::BadRequest,
                                        ..
                                    }
                                ),
                                "undecodable body answered with {resp:?}"
                            );
                            // ... and then the connection dies.
                            assert!(matches!(
                                read_frame(&mut s, DEFAULT_MAX_FRAME),
                                Err(FrameError::Closed)
                            ));
                        }
                        // Best-effort error reply may be skipped; the
                        // close itself is the contract.
                        Err(FrameError::Closed) => {}
                        Err(e) => panic!("unexpected transport failure: {e:?}"),
                    }
                }
            }

            // Raw unframed garbage, then a hangup: the server must
            // shrug the connection off.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(body).unwrap();
            drop(s);

            // The server is still serving fresh connections.
            let mut probe = Client::connect(addr).unwrap();
            probe.ping().expect("server must survive malformed peers");
        },
    );

    // An oversized declared frame length kills that connection too.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    s.flush().unwrap();
    match read_frame(&mut s, DEFAULT_MAX_FRAME) {
        Ok(reply) => {
            assert!(matches!(
                Response::decode(&reply).expect("well-formed reply"),
                Response::Error { .. }
            ));
        }
        Err(FrameError::Closed) => {}
        Err(e) => panic!("unexpected transport failure: {e:?}"),
    }

    let mut probe = Client::connect(addr).unwrap();
    probe.ping().expect("server must survive an oversized frame");
    let stats = server.shutdown();
    assert!(
        stats.protocol_errors > 0,
        "the fuzz run should have tripped the protocol-error counter: {stats:?}"
    );
}
