//! Differential crash-recovery suite for the durable, sharded session
//! service (DESIGN.md §3.3e).
//!
//! Two crash models, both driven by random edit scripts from
//! `testkit::gen::edit_script_with_degenerates` and both compared
//! **byte-for-byte** against an in-process mirror engine that applies
//! exactly the acknowledged prefix:
//!
//! * **Edit-boundary crashes** (over real TCP): run a prefix of the
//!   script against a served instance, hard-stop the process state
//!   (shutdown never checkpoints — at the WAL level it is
//!   indistinguishable from a kill), rebind over the same
//!   `--data-dir`, and require every tally/median/snapshot reply —
//!   and the entire remainder of the script — byte-identical to the
//!   mirror.
//! * **Torn mid-record WAL tails** (in-process service): run the whole
//!   script, then truncate the shard's WAL at a byte offset strictly
//!   inside a record. Recovery must survive the torn tail, keep every
//!   record before it, and serve exactly the mirror of that prefix —
//!   the recovery invariant "acknowledged ⇒ replayed" on the
//!   surviving records, and nothing past the tear.
//!
//! The CI heavy lane (`BUCKETRANK_CI_HEAVY=1`) upgrades the sampled
//! tear to an exhaustive **every-byte-offset** matrix over fixed
//! scripts.

use bucketrank::aggregate::dynamic::{DynamicProfile, VoterId};
use bucketrank::aggregate::{AggregateError, MedianPolicy};
use bucketrank::metrics::prepared::{
    fhaus_x2_prepared, fprof_x2_prepared, khaus_x2_prepared, kprof_x2_prepared, PreparedRanking,
};
use bucketrank::server::proto::{ErrorCode, MetricKind, Request, Response, WirePolicy};
use bucketrank::server::service::{Service, ServiceConfig};
use bucketrank::server::{Client, Server, ServerConfig};
use bucketrank::BucketOrder;
use bucketrank_testkit::gen::EditOp;
use bucketrank_testkit::prelude::*;
use bucketrank_testkit::runner::case_rng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A per-case scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bucketrank-recovery-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scripts() -> impl Gen<Value = Vec<EditOp>> {
    gen::edit_script_with_degenerates(3..=14, 6, 3)
}

fn script_domain(script: &[EditOp]) -> usize {
    script
        .iter()
        .find_map(|op| match op {
            EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
            EditOp::Remove(_) => None,
        })
        .expect("scripts always embed a ranking")
}

/// Deterministic per-script entropy (the property only receives the
/// value, so crash points are derived from the script itself).
fn script_hash(script: &[EditOp]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for op in script {
        match op {
            EditOp::Push(r) => {
                eat(1);
                for e in 0..r.len() {
                    eat(r.bucket_index(e as u32) as u64);
                }
            }
            EditOp::Remove(i) => {
                eat(2);
                eat(*i as u64);
            }
            EditOp::Replace(i, r) => {
                eat(3);
                eat(*i as u64);
                for e in 0..r.len() {
                    eat(r.bucket_index(e as u32) as u64);
                }
            }
        }
    }
    h
}

/// The in-process mirror: the engine plus the live-voter list used to
/// resolve script indices exactly as the drivers do.
struct Mirror {
    dp: DynamicProfile,
    live: Vec<u64>,
}

impl Mirror {
    fn new(n: usize) -> Mirror {
        Mirror {
            dp: DynamicProfile::new(n, MedianPolicy::Lower),
            live: Vec::new(),
        }
    }

    /// The wire request one script op resolves to, given the current
    /// live list (empty lists target the ghost id, exercising the
    /// typed unknown-voter path).
    fn resolve(&self, name: &str, op: &EditOp) -> Request {
        let target = |i: &usize| {
            if self.live.is_empty() {
                u64::MAX
            } else {
                self.live[i % self.live.len()]
            }
        };
        match op {
            EditOp::Push(r) => Request::PushVoter {
                session: name.to_owned(),
                ranking: r.clone(),
            },
            EditOp::Remove(i) => Request::RemoveVoter {
                session: name.to_owned(),
                voter: target(i),
            },
            EditOp::Replace(i, r) => Request::ReplaceVoter {
                session: name.to_owned(),
                voter: target(i),
                ranking: r.clone(),
            },
        }
    }

    /// Applies one resolved edit, returning the reply the service must
    /// produce for it (success acks and typed errors alike).
    fn apply(&mut self, req: &Request) -> Response {
        let out = match req {
            Request::PushVoter { ranking, .. } => self
                .dp
                .push_voter(ranking.clone())
                .map(|id| {
                    self.live.push(id.raw());
                    Response::VoterPushed { voter: id.raw() }
                }),
            Request::RemoveVoter { voter, .. } => self
                .dp
                .remove_voter(VoterId::from_raw(*voter))
                .map(|_| {
                    self.live.retain(|v| v != voter);
                    Response::VoterRemoved
                }),
            Request::ReplaceVoter { voter, ranking, .. } => self
                .dp
                .replace_voter(VoterId::from_raw(*voter), ranking.clone())
                .map(|_| Response::VoterReplaced),
            other => panic!("not an edit: {other:?}"),
        };
        out.unwrap_or_else(|e| mirror_agg_error(&e))
    }

    /// The reply the service must produce for one read request.
    fn expected_read(&self, name: &str, req: &Request) -> Response {
        if self.dp.voters() == 0 {
            return Response::Error {
                code: ErrorCode::NoVoters,
                message: format!("session {name:?} has no live voters"),
            };
        }
        let snap = self.dp.snapshot().expect("live voters");
        match req {
            Request::MedianOrder { .. } => Response::Ranking {
                order: snap.median_order(),
            },
            Request::TopK { k, .. } => match snap.top_k(*k as usize) {
                Ok(order) => Response::Ranking { order },
                Err(e) => mirror_agg_error(&e),
            },
            Request::KemenyCost { candidate, .. } => {
                match snap.tally().kemeny_cost_x2(candidate) {
                    Ok(value) => Response::CostX2 { value },
                    Err(e) => mirror_agg_error(&e),
                }
            }
            other => panic!("not a read: {other:?}"),
        }
    }

    /// The reply the service must produce for a pair-metric request.
    fn expected_pair(&self, metric: MetricKind, a: u64, b: u64) -> Response {
        let fetch = |raw: u64| {
            self.dp
                .get_voter(VoterId::from_raw(raw))
                .cloned()
                .ok_or(AggregateError::UnknownVoter { id: raw })
        };
        let (ra, rb) = match (fetch(a), fetch(b)) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(e), _) | (_, Err(e)) => return mirror_agg_error(&e),
        };
        let pa = PreparedRanking::new(&ra);
        let pb = PreparedRanking::new(&rb);
        let value = match metric {
            MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
            MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
            MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
            MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
        };
        Response::CostX2 {
            value: value.expect("same-domain stored rankings"),
        }
    }

    /// The read battery compared byte-for-byte after every crash: the
    /// median order, both top-k extremes, and a Kemeny cost.
    fn read_battery(&self, name: &str, n: usize) -> Vec<Request> {
        vec![
            Request::MedianOrder {
                session: name.to_owned(),
            },
            Request::TopK {
                session: name.to_owned(),
                k: 1,
            },
            Request::TopK {
                session: name.to_owned(),
                k: n as u32,
            },
            Request::KemenyCost {
                session: name.to_owned(),
                candidate: BucketOrder::trivial(n),
            },
        ]
    }
}

fn mirror_agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::NoInputs => ErrorCode::NoVoters,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        AggregateError::InvalidK { .. } => ErrorCode::InvalidK,
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::TooManyVoters { .. } => ErrorCode::TooManyVoters,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Crash at a random edit boundary over real TCP: acknowledged prefix
/// applied, server shut down (no checkpoint — crash-equivalent),
/// rebound over the same data dir on a fresh port. The recovered
/// instance must answer the read battery, the script's remainder, and
/// a final pair-metric probe byte-identically to the mirror.
#[test]
fn crash_at_edit_boundary_recovers_acknowledged_prefix() {
    check("crash_at_edit_boundary", scripts(), |script| {
        let n = script_domain(script);
        let h = script_hash(script);
        let cut = (h % (script.len() as u64 + 1)) as usize;
        // Session name varies per case so both shards see traffic.
        let name = format!("s{}", h % 7);
        let tmp = TempDir::new("tcp");
        let config = || ServerConfig {
            workers: 2,
            shards: 2,
            data_dir: Some(tmp.0.clone()),
            // Small enough that longer scripts compact mid-run, so
            // recovery mixes checkpoints with a WAL suffix.
            checkpoint_every: 5,
            ..ServerConfig::default()
        };

        let mut mirror = Mirror::new(n);
        let server = Server::bind("127.0.0.1:0", config()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let create = Request::CreateSession {
            name: name.clone(),
            n: n as u32,
            policy: WirePolicy::Lower,
        };
        assert_eq!(
            client.call_raw(&create).expect("create"),
            Response::SessionCreated.encode()
        );
        for op in &script[..cut] {
            let req = mirror.resolve(&name, op);
            let got = client.call_raw(&req).expect("edit reply");
            let want = mirror.apply(&req);
            assert_eq!(got, want.encode(), "pre-crash ack diverged on {req:?}");
        }
        drop(client);
        // Graceful drain without checkpointing: everything past the
        // synced WAL is process state, and it dies here.
        server.shutdown();

        let server = Server::bind("127.0.0.1:0", config()).expect("rebind");
        let mut client = Client::connect(server.local_addr()).expect("reconnect");
        for req in mirror.read_battery(&name, n) {
            let got = client.call_raw(&req).expect("read reply");
            assert_eq!(
                got,
                mirror.expected_read(&name, &req).encode(),
                "post-recovery read diverged on {req:?} (cut {cut}/{})",
                script.len()
            );
        }
        // The remainder of the script must play out exactly as if the
        // crash never happened — including the ids of fresh pushes.
        for op in &script[cut..] {
            let req = mirror.resolve(&name, op);
            let got = client.call_raw(&req).expect("post-crash edit");
            let want = mirror.apply(&req);
            assert_eq!(got, want.encode(), "post-crash edit diverged on {req:?}");
        }
        let (a, b) = match mirror.live.as_slice() {
            [] => (u64::MAX, u64::MAX),
            [only] => (*only, *only),
            [first, .., last] => (*first, *last),
        };
        let metric = MetricKind::ALL[(h % 4) as usize];
        let req = Request::PairMetric {
            session: name.clone(),
            metric,
            voter_a: a,
            voter_b: b,
        };
        assert_eq!(
            client.call_raw(&req).expect("pair reply"),
            mirror.expected_pair(metric, a, b).encode(),
            "pair metric diverged after recovery"
        );
        drop(client);
        server.shutdown();
    });
}

/// Byte offsets of record boundaries in a WAL: `bounds[i]` is where
/// record `i` starts; the final entry is the file length.
fn record_bounds(wal: &[u8]) -> Vec<usize> {
    let mut bounds = vec![0];
    let mut at = 0;
    while at + 8 <= wal.len() {
        let len = u32::from_be_bytes(wal[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + len > wal.len() {
            break;
        }
        at += 8 + len;
        bounds.push(at);
    }
    bounds
}

/// Runs `script` against a fresh single-shard durable service with
/// compaction disabled, so the WAL holds exactly one record per
/// acknowledged create/edit. Returns the resolved requests that were
/// acknowledged with success, in WAL-record order (create first).
fn run_durable(dir: &Path, name: &str, n: usize, script: &[EditOp]) -> Vec<Request> {
    let svc = Service::with_config(ServiceConfig {
        shards: 1,
        max_sessions: 64,
        data_dir: Some(dir.to_path_buf()),
        checkpoint_every: u64::MAX,
    })
    .expect("open service");
    let mut mirror = Mirror::new(n);
    let create = Request::CreateSession {
        name: name.to_owned(),
        n: n as u32,
        policy: WirePolicy::Lower,
    };
    assert_eq!(svc.handle(create.clone()), Response::SessionCreated);
    let mut acked = vec![create];
    for op in script {
        let req = mirror.resolve(name, op);
        let got = svc.handle(req.clone());
        assert_eq!(got, mirror.apply(&req), "live ack diverged on {req:?}");
        if !matches!(got, Response::Error { .. }) {
            acked.push(req);
        }
    }
    acked
}

/// Replays the first `records` acknowledged requests (create included)
/// into a fresh mirror — the state a recovery from that WAL prefix
/// must reproduce. Returns `None` when even the create is gone.
fn mirror_of_prefix(acked: &[Request], records: usize, n: usize) -> Option<Mirror> {
    if records == 0 {
        return None;
    }
    let mut mirror = Mirror::new(n);
    for req in &acked[1..records] {
        let resp = mirror.apply(req);
        assert!(
            !matches!(resp, Response::Error { .. }),
            "acknowledged record must replay clean"
        );
    }
    Some(mirror)
}

/// Asserts a recovered single-shard service serves exactly the mirror
/// of the surviving-record prefix (or knows nothing of the session
/// when the create itself was torn away).
fn assert_recovers_prefix(dir: &Path, name: &str, n: usize, mirror: Option<&Mirror>) {
    let svc = Service::with_config(ServiceConfig {
        shards: 1,
        max_sessions: 64,
        data_dir: Some(dir.to_path_buf()),
        checkpoint_every: u64::MAX,
    })
    .expect("recovery must not fail on torn/corrupt records");
    match mirror {
        None => {
            let req = Request::MedianOrder {
                session: name.to_owned(),
            };
            let want = Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("no session named {name:?}"),
            };
            assert_eq!(svc.handle(req).encode(), want.encode());
        }
        Some(mirror) => {
            for req in mirror.read_battery(name, n) {
                assert_eq!(
                    svc.handle(req.clone()).encode(),
                    mirror.expected_read(name, &req).encode(),
                    "torn-tail recovery diverged on {req:?}"
                );
            }
        }
    }
}

/// Torn mid-record tails at a sampled offset: truncating the WAL
/// strictly inside record `j` must recover exactly records `0..j`.
#[test]
fn torn_wal_tail_recovers_exactly_the_surviving_records() {
    check("torn_wal_tail", scripts(), |script| {
        let n = script_domain(script);
        let h = script_hash(script);
        let name = "torn";
        let tmp = TempDir::new("torn");
        let acked = run_durable(&tmp.0, name, n, script);

        let wal_path = tmp.0.join("shard-0").join("wal.log");
        let wal = std::fs::read(&wal_path).expect("read wal");
        let bounds = record_bounds(&wal);
        assert_eq!(
            bounds.len(),
            acked.len() + 1,
            "one WAL record per acknowledged op"
        );
        // Tear strictly inside record j: any offset in
        // (bounds[j], bounds[j+1]) leaves records 0..j intact and
        // truncates j away as a torn tail.
        let j = (h % acked.len() as u64) as usize;
        let span = bounds[j + 1] - bounds[j];
        let tear = bounds[j] + 1 + (h >> 8) as usize % (span - 1);
        std::fs::write(&wal_path, &wal[..tear]).expect("tear wal");

        let mirror = mirror_of_prefix(&acked, j, n);
        assert_recovers_prefix(&tmp.0, name, n, mirror.as_ref());
    });
}

/// Bit-flips inside a record body must truncate recovery at that
/// record (CRC catches them), never panic, and never leak anything
/// past the corrupt record into the recovered state.
#[test]
fn corrupt_wal_record_truncates_recovery_at_the_fault() {
    check("corrupt_wal_record", scripts(), |script| {
        let n = script_domain(script);
        let h = script_hash(script);
        let name = "torn";
        let tmp = TempDir::new("flip");
        let acked = run_durable(&tmp.0, name, n, script);

        let wal_path = tmp.0.join("shard-0").join("wal.log");
        let mut wal = std::fs::read(&wal_path).expect("read wal");
        let bounds = record_bounds(&wal);
        let j = (h % acked.len() as u64) as usize;
        // Flip one bit somewhere in record j (header or body alike).
        let span = bounds[j + 1] - bounds[j];
        let at = bounds[j] + (h >> 8) as usize % span;
        wal[at] ^= 1 << ((h >> 16) % 8);
        std::fs::write(&wal_path, &wal).expect("corrupt wal");

        let mirror = mirror_of_prefix(&acked, j, n);
        assert_recovers_prefix(&tmp.0, name, n, mirror.as_ref());
    });
}

/// The reviewer-found drop-anchor regression: after a compaction, edit
/// a session, drop it (which deletes its checkpoint — the only anchor
/// the pre-drop edit record had), then create and edit a *different*
/// session and crash. Replay must skip the unanchorable pre-drop edit
/// (its later Drop record proves it unobservable) instead of faulting
/// and discarding the second session's acknowledged records.
#[test]
fn drop_after_compaction_edit_does_not_fault_later_sessions() {
    let tmp = TempDir::new("drop-anchor");
    let cfg = || ServiceConfig {
        shards: 1,
        max_sessions: 64,
        data_dir: Some(tmp.0.clone()),
        checkpoint_every: 5,
    };
    let keys = |k: &[i64]| BucketOrder::from_keys(k);
    let t_ranking = keys(&[2, 1, 3]);
    {
        let svc = Service::with_config(cfg()).expect("open");
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "s".into(),
                n: 3,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        // Records 2..=5: the 4th push makes since_compact hit 5, so the
        // shard compacts — checkpoint for "s" current, WAL empty.
        for _ in 0..4 {
            assert!(matches!(
                svc.handle(Request::PushVoter {
                    session: "s".into(),
                    ranking: keys(&[1, 2, 3]),
                }),
                Response::VoterPushed { .. }
            ));
        }
        // Post-compaction: edit "s" (in the WAL, anchored only by the
        // checkpoint), drop "s" (checkpoint deleted), then create and
        // edit "t" — all acknowledged, none compacted.
        assert!(matches!(
            svc.handle(Request::PushVoter {
                session: "s".into(),
                ranking: keys(&[3, 2, 1]),
            }),
            Response::VoterPushed { .. }
        ));
        assert_eq!(
            svc.handle(Request::DropSession { name: "s".into() }),
            Response::SessionDropped
        );
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "t".into(),
                n: 3,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        assert_eq!(
            svc.handle(Request::PushVoter {
                session: "t".into(),
                ranking: t_ranking.clone(),
            }),
            Response::VoterPushed { voter: 0 }
        );
        // Hard drop: no checkpoint fires for "t" before the crash.
    }
    let svc = Service::with_config(cfg()).expect("recovery must survive the dropped anchor");
    // "t" and its acknowledged edit survived the crash.
    assert_eq!(
        svc.handle(Request::MedianOrder { session: "t".into() }),
        Response::Ranking {
            order: t_ranking.clone()
        }
    );
    // Voter ids continue exactly where the pre-crash process stopped.
    assert_eq!(
        svc.handle(Request::PushVoter {
            session: "t".into(),
            ranking: t_ranking,
        }),
        Response::VoterPushed { voter: 1 }
    );
    // The dropped session stayed dropped (no resurrection from any
    // leftover checkpoint or skipped record).
    assert!(matches!(
        svc.handle(Request::MedianOrder { session: "s".into() }),
        Response::Error {
            code: ErrorCode::UnknownSession,
            ..
        }
    ));
}

/// Files named `wal.log.corrupt-*` in a shard directory.
fn preserved_logs(shard_dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(shard_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|s| s.to_str())
                        .is_some_and(|s| s.starts_with("wal.log.corrupt-"))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// A mid-log corruption (here a CRC flip) discards everything after
/// the fault, so recovery must set the log aside as
/// `wal.log.corrupt-*` for post-mortem before compaction truncates it;
/// a pure torn tail — the normal residue of a crash mid-append — must
/// *not* litter the directory with preserved copies.
#[test]
fn corrupt_wal_suffix_is_preserved_for_post_mortem() {
    let keys = |k: &[i64]| BucketOrder::from_keys(k);
    let script: Vec<EditOp> = vec![
        EditOp::Push(keys(&[1, 2, 3])),
        EditOp::Push(keys(&[3, 2, 1])),
        EditOp::Push(keys(&[2, 1, 3])),
    ];
    let name = "torn";

    // CRC flip in record 1: records 2.. are silently unreachable, so
    // the log must be preserved.
    let tmp = TempDir::new("preserve");
    let acked = run_durable(&tmp.0, name, 3, &script);
    let shard_dir = tmp.0.join("shard-0");
    let wal_path = shard_dir.join("wal.log");
    let mut wal = std::fs::read(&wal_path).expect("read wal");
    let bounds = record_bounds(&wal);
    wal[bounds[1] + 4] ^= 1; // CRC byte of record 1: guaranteed BadCrc
    std::fs::write(&wal_path, &wal).expect("corrupt wal");
    let mirror = mirror_of_prefix(&acked, 1, 3);
    assert_recovers_prefix(&tmp.0, name, 3, mirror.as_ref());
    let kept = preserved_logs(&shard_dir);
    assert_eq!(
        kept.len(),
        1,
        "a mid-log corruption must preserve the log: {kept:?}"
    );
    // The preserved copy holds the full pre-corruption byte stream.
    assert_eq!(std::fs::read(&kept[0]).expect("read preserved"), wal);

    // Torn tail: same script, truncate strictly inside the last
    // record. Recovery keeps the prefix and preserves nothing.
    let tmp = TempDir::new("tear-clean");
    let acked = run_durable(&tmp.0, name, 3, &script);
    let shard_dir = tmp.0.join("shard-0");
    let wal_path = shard_dir.join("wal.log");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let bounds = record_bounds(&wal);
    let last = bounds.len() - 2;
    std::fs::write(&wal_path, &wal[..bounds[last] + 3]).expect("tear wal");
    let mirror = mirror_of_prefix(&acked, last, 3);
    assert_recovers_prefix(&tmp.0, name, 3, mirror.as_ref());
    assert!(
        preserved_logs(&shard_dir).is_empty(),
        "a plain torn tail must not be preserved"
    );
}

/// The CI heavy lane's exhaustive matrix: for a handful of fixed
/// scripts, every byte offset of the WAL is used as a truncation
/// point. `truncate at offset t` keeps exactly the records that fit
/// entirely below `t` — recovery must serve precisely their mirror,
/// for every single `t`.
#[test]
#[ignore = "exhaustive torn-offset matrix; run in the CI heavy lane"]
fn every_torn_offset_recovers_its_exact_prefix() {
    let cfg = Config::from_env();
    for case in 0..4usize {
        let mut rng = case_rng(cfg.seed, "torn_offset_matrix", case);
        let script = scripts().generate(&mut rng);
        let n = script_domain(&script);
        let name = "torn";
        let master = TempDir::new("matrix-master");
        let acked = run_durable(&master.0, name, n, &script);
        let wal_path = master.0.join("shard-0").join("wal.log");
        let wal = std::fs::read(&wal_path).expect("read wal");
        let bounds = record_bounds(&wal);

        let shard_dir = master.0.join("shard-0");
        for tear in 0..=wal.len() {
            // Recovery compacts (checkpoints + truncation), so rebuild
            // the shard directory from the saved WAL copy every time.
            let _ = std::fs::remove_dir_all(&shard_dir);
            std::fs::create_dir_all(&shard_dir).expect("recreate shard dir");
            std::fs::write(&wal_path, &wal[..tear]).expect("tear wal");
            // Records surviving a tear at `tear`: those ending ≤ tear.
            let survivors = bounds[1..].iter().filter(|&&b| b <= tear).count();
            let mirror = mirror_of_prefix(&acked, survivors, n);
            assert_recovers_prefix(&master.0, name, n, mirror.as_ref());
        }
    }
}
