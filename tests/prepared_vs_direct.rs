//! Differential conformance suite for the prepared-ranking kernels:
//! every `*_prepared` kernel must return **exactly** the same integer as
//! the direct metric function — no float tolerance, since every value is
//! exact — on random same-domain pairs with heavy degenerate coverage
//! (full rankings, single-bucket rankings, singleton domains), and must
//! report mismatched domains as a [`MetricsError`], never a panic.
//!
//! The pair-statistics dispatcher gets its own lane: the counting
//! (contingency-table) and Fenwick sort lanes are held bit-identical on
//! every generated pair, and one [`PairArena`] is reused across pairs
//! of shrinking and growing sizes to prove the pooled scratch carries
//! no state between calls.

use bucketrank::metrics::batch::{
    pairwise_matrix, pairwise_matrix_parallel, pairwise_matrix_with, prepare_all,
    weighted_pairwise_matrix, weighted_pairwise_matrix_parallel, BatchMetric, WeightedMetric,
};
use bucketrank::metrics::prepared::{
    fhaus_prepared, fhaus_x2_prepared, fprof_x2_prepared, kavg_x2_prepared, khaus_prepared,
    khaus_x2_prepared, kprof_x2_prepared, pair_counts_fenwick_in, pair_counts_prepared,
    pair_counts_prepared_in, pair_counts_table_in, PairArena, PreparedRanking,
};
use bucketrank::metrics::weighted::{
    top_diff_prepared, top_diff_prepared_in, weighted_footrule_x2_prepared,
    weighted_footrule_x2_prepared_in, Weights,
};
use bucketrank::metrics::{footrule, hausdorff, kendall, pairs, MetricsError};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;

/// Assert exact prepared-vs-direct agreement on one pair, for every
/// kernel the prepared layer exposes.
fn assert_kernels_match(a: &BucketOrder, b: &BucketOrder) {
    let pa = PreparedRanking::new(a);
    let pb = PreparedRanking::new(b);
    assert_eq!(
        pair_counts_prepared(&pa, &pb).unwrap(),
        pairs::pair_counts(a, b).unwrap(),
        "pair_counts: {a:?} vs {b:?}"
    );
    assert_eq!(
        kprof_x2_prepared(&pa, &pb).unwrap(),
        kendall::kprof_x2(a, b).unwrap(),
        "kprof_x2: {a:?} vs {b:?}"
    );
    assert_eq!(
        kavg_x2_prepared(&pa, &pb).unwrap(),
        kendall::kavg_x2(a, b).unwrap(),
        "kavg_x2: {a:?} vs {b:?}"
    );
    assert_eq!(
        fprof_x2_prepared(&pa, &pb).unwrap(),
        footrule::fprof_x2(a, b).unwrap(),
        "fprof_x2: {a:?} vs {b:?}"
    );
    assert_eq!(
        khaus_prepared(&pa, &pb).unwrap(),
        hausdorff::khaus(a, b).unwrap(),
        "khaus: {a:?} vs {b:?}"
    );
    assert_eq!(
        khaus_x2_prepared(&pa, &pb).unwrap(),
        2 * hausdorff::khaus(a, b).unwrap(),
        "khaus_x2: {a:?} vs {b:?}"
    );
    assert_eq!(
        fhaus_prepared(&pa, &pb).unwrap(),
        hausdorff::fhaus(a, b).unwrap(),
        "fhaus: {a:?} vs {b:?}"
    );
    assert_eq!(
        fhaus_x2_prepared(&pa, &pb).unwrap(),
        2 * hausdorff::fhaus(a, b).unwrap(),
        "fhaus_x2: {a:?} vs {b:?}"
    );
}

#[test]
fn prepared_equals_direct_on_degenerate_heavy_pairs() {
    // The degenerate-weighted pair stream: singleton domains, all-tied
    // sides, full×full pairs, and generic pairs, all over one domain.
    check(
        "prepared_equals_direct_on_degenerate_heavy_pairs",
        gen::order_pair_with_degenerates(12, 4),
        |(a, b)| assert_kernels_match(a, b),
    );
}

#[test]
fn prepared_equals_direct_on_full_rankings() {
    check(
        "prepared_equals_direct_on_full_rankings",
        gen::full_pair(10),
        |(a, b)| assert_kernels_match(a, b),
    );
}

#[test]
fn prepared_equals_direct_on_near_tied_pairs() {
    // Two levels over eleven elements: huge buckets, maximal tie mass.
    check(
        "prepared_equals_direct_on_near_tied_pairs",
        gen::order_pair(11, 2),
        |(a, b)| assert_kernels_match(a, b),
    );
}

#[test]
fn prepared_equals_direct_on_singleton_and_single_bucket() {
    // Pinned smallest cases, independent of generator weighting.
    let singleton = BucketOrder::trivial(1);
    assert_kernels_match(&singleton, &singleton);
    let tied = BucketOrder::trivial(7);
    let full = BucketOrder::from_permutation(&[3, 0, 6, 2, 5, 1, 4]).unwrap();
    assert_kernels_match(&tied, &tied);
    assert_kernels_match(&tied, &full);
    assert_kernels_match(&full, &tied);
}

#[test]
fn batch_matrix_equals_direct_double_loop_sequential_and_parallel() {
    // The conformance requirement end to end: the prepared batch engine
    // (sequential and parallel) agrees exactly with a per-pair direct
    // evaluation, for every metric, on random profiles.
    check(
        "batch_matrix_equals_direct_double_loop_sequential_and_parallel",
        gen::vec_of(gen::bucket_order(9, 3), 2..=7),
        |profile| {
            for metric in BatchMetric::ALL {
                let naive = pairwise_matrix_with(profile, |a, b| metric.direct(a, b)).unwrap();
                let seq = pairwise_matrix(profile, metric).unwrap();
                assert_eq!(naive, seq, "{} sequential", metric.name());
                for threads in [2usize, 3, 8] {
                    let par = pairwise_matrix_parallel(profile, metric, threads).unwrap();
                    assert_eq!(naive, par, "{} threads = {threads}", metric.name());
                }
            }
        },
    );
}

#[test]
fn counting_and_sort_lanes_agree_on_degenerate_heavy_pairs() {
    // Both forced lanes and the dispatcher, against the direct
    // reference, on the degenerate-weighted pair stream. One arena
    // serves the whole run — reuse across pairs (and across lanes)
    // must never leak state. (`RefCell` because the runner takes `Fn`.)
    let arena = std::cell::RefCell::new(PairArena::new());
    check(
        "counting_and_sort_lanes_agree_on_degenerate_heavy_pairs",
        gen::order_pair_with_degenerates(12, 4),
        |(a, b)| {
            let arena = &mut *arena.borrow_mut();
            let expected = pairs::pair_counts(a, b).unwrap();
            let pa = PreparedRanking::new(a);
            let pb = PreparedRanking::new(b);
            assert_eq!(
                pair_counts_table_in(arena, &pa, &pb).unwrap(),
                expected,
                "table lane: {a:?} vs {b:?}"
            );
            assert_eq!(
                pair_counts_fenwick_in(arena, &pa, &pb).unwrap(),
                expected,
                "fenwick lane: {a:?} vs {b:?}"
            );
            assert_eq!(
                pair_counts_prepared_in(arena, &pa, &pb).unwrap(),
                expected,
                "dispatcher: {a:?} vs {b:?}"
            );
        },
    );
}

#[test]
fn arena_reuse_across_shrinking_and_growing_sizes() {
    // Pin the stale-scratch hazard directly: the same arena answers a
    // large fine-bucketed pair (sort lane, big Fenwick), then a small
    // coarse pair (counting lane, table smaller than the previous
    // buffers), then a large pair again. Each answer must match the
    // direct kernel computed fresh.
    let big_a = BucketOrder::from_permutation(&[7, 2, 9, 0, 4, 6, 1, 8, 3, 5]).unwrap();
    let big_b = BucketOrder::from_permutation(&[3, 8, 0, 5, 9, 1, 7, 2, 6, 4]).unwrap();
    let small_a = BucketOrder::from_keys(&[1, 2, 1]);
    let small_b = BucketOrder::from_keys(&[2, 1, 1]);
    let mut arena = PairArena::new();
    for _ in 0..3 {
        for (a, b) in [(&big_a, &big_b), (&small_a, &small_b), (&big_b, &big_a)] {
            let expected = pairs::pair_counts(a, b).unwrap();
            let pa = PreparedRanking::new(a);
            let pb = PreparedRanking::new(b);
            assert_eq!(pair_counts_prepared_in(&mut arena, &pa, &pb).unwrap(), expected);
            assert_eq!(pair_counts_table_in(&mut arena, &pa, &pb).unwrap(), expected);
            assert_eq!(pair_counts_fenwick_in(&mut arena, &pa, &pb).unwrap(), expected);
        }
    }
}

#[test]
fn weighted_prepared_equals_naive_on_degenerate_heavy_pairs() {
    // The weighted lane: both prepared weighted kernels against their
    // naive references, under every degenerate weight class, with one
    // arena shared across the whole run (stale weighted scratch must
    // never leak between calls, same hazard as the pair-counts lanes).
    let arena = std::cell::RefCell::new(PairArena::new());
    check(
        "weighted_prepared_equals_naive_on_degenerate_heavy_pairs",
        gen::pair(
            gen::order_pair_with_degenerates(12, 4),
            gen::weights_with_degenerates(12),
        ),
        |((a, b), units)| {
            // Independent shrinking can desync the two sides; mismatch
            // handling has its own test below.
            if units.len() != a.len() {
                return;
            }
            let w = Weights::from_units(units.clone()).unwrap();
            let arena = &mut *arena.borrow_mut();
            let pa = PreparedRanking::new(a);
            let pb = PreparedRanking::new(b);
            assert_eq!(
                weighted_footrule_x2_prepared_in(arena, &pa, &pb, &w).unwrap(),
                WeightedMetric::WeightedFootruleX2.naive(a, b, &w).unwrap(),
                "weighted footrule: {a:?} vs {b:?} under {units:?}"
            );
            assert_eq!(
                top_diff_prepared_in(arena, &pa, &pb, &w).unwrap(),
                WeightedMetric::TopDiff.naive(a, b, &w).unwrap(),
                "top diff: {a:?} vs {b:?} under {units:?}"
            );
        },
    );
}

#[test]
fn weighted_matrix_equals_naive_double_loop_sequential_and_parallel() {
    check(
        "weighted_matrix_equals_naive_double_loop_sequential_and_parallel",
        gen::pair(
            gen::vec_of(gen::bucket_order(9, 3), 2..=7),
            gen::weights_with_degenerates(9),
        ),
        |(profile, units)| {
            if units.len() != profile[0].len() {
                return;
            }
            let w = Weights::from_units(units.clone()).unwrap();
            for metric in WeightedMetric::ALL {
                let naive =
                    pairwise_matrix_with(profile, |a, b| metric.naive(a, b, &w)).unwrap();
                let seq = weighted_pairwise_matrix(profile, metric, &w).unwrap();
                assert_eq!(naive, seq, "{} sequential", metric.name());
                for threads in [2usize, 3, 8] {
                    let par =
                        weighted_pairwise_matrix_parallel(profile, metric, &w, threads).unwrap();
                    assert_eq!(naive, par, "{} threads = {threads}", metric.name());
                }
            }
        },
    );
}

#[test]
fn weighted_entry_points_reject_bad_shapes_not_panic() {
    let a = BucketOrder::from_keys(&[1, 2, 2]);
    let b = BucketOrder::from_keys(&[2, 1, 1, 2, 3]);
    let pa = PreparedRanking::new(&a);
    let pb = PreparedRanking::new(&b);
    let w3 = Weights::uniform(3);
    let w5 = Weights::uniform(5);
    // Mismatched domains, with matching weights on the left side.
    let expected = MetricsError::DomainMismatch { left: 3, right: 5 };
    assert_eq!(weighted_footrule_x2_prepared(&pa, &pb, &w3).unwrap_err(), expected);
    assert_eq!(top_diff_prepared(&pa, &pb, &w3).unwrap_err(), expected);
    // Wrong-length weights against a same-domain pair, from every entry
    // point: naive, prepared, and both matrix drivers.
    let wrong = MetricsError::WeightsLengthMismatch { weights: 5, domain: 3 };
    for metric in WeightedMetric::ALL {
        assert_eq!(metric.naive(&a, &a, &w5).unwrap_err(), wrong);
    }
    assert_eq!(weighted_footrule_x2_prepared(&pa, &pa, &w5).unwrap_err(), wrong);
    assert_eq!(top_diff_prepared(&pa, &pa, &w5).unwrap_err(), wrong);
    let profile = vec![a.clone(), a.clone()];
    for metric in WeightedMetric::ALL {
        assert_eq!(
            weighted_pairwise_matrix(&profile, metric, &w5).unwrap_err(),
            wrong
        );
        assert_eq!(
            weighted_pairwise_matrix_parallel(&profile, metric, &w5, 4).unwrap_err(),
            wrong
        );
    }
    // Mixed-domain profiles are rejected up front, as in the unweighted
    // batch path.
    let mixed = vec![a.clone(), b.clone()];
    for metric in WeightedMetric::ALL {
        assert!(weighted_pairwise_matrix(&mixed, metric, &w3).is_err());
        assert!(weighted_pairwise_matrix_parallel(&mixed, metric, &w3, 4).is_err());
    }
}

#[test]
fn mismatched_domains_error_not_panic_from_every_entry_point() {
    let a = BucketOrder::from_keys(&[1, 2, 2]);
    let b = BucketOrder::from_keys(&[2, 1, 1, 2, 3]);
    let pa = PreparedRanking::new(&a);
    let pb = PreparedRanking::new(&b);
    let expected = MetricsError::DomainMismatch { left: 3, right: 5 };
    assert_eq!(pair_counts_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(kprof_x2_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(kavg_x2_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(fprof_x2_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(khaus_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(khaus_x2_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(fhaus_prepared(&pa, &pb).unwrap_err(), expected);
    assert_eq!(fhaus_x2_prepared(&pa, &pb).unwrap_err(), expected);
    // The reversed direction reports the sizes in call order.
    let flipped = MetricsError::DomainMismatch { left: 5, right: 3 };
    assert_eq!(kprof_x2_prepared(&pb, &pa).unwrap_err(), flipped);
    // Batch preparation rejects mixed-domain profiles up front…
    let profile = vec![a.clone(), b.clone()];
    assert!(prepare_all(&profile).is_err());
    for metric in BatchMetric::ALL {
        assert!(pairwise_matrix(&profile, metric).is_err());
        assert!(pairwise_matrix_parallel(&profile, metric, 4).is_err());
    }
}
