//! Property tests for the session LRU and the per-shard counters.
//!
//! Under a small `--max-sessions` cap, a durable [`Service`] must never
//! hold more residents than the cap, must evict exactly the
//! least-recently-touched session, and a faulted-back session must
//! serve state byte-identical to a memory-only mirror that never
//! evicted anything. The counter test hammers a shared service from
//! several threads and requires the per-shard atomics to aggregate to
//! exact totals — the regression guard for moving stats off a single
//! locked struct.

use bucketrank::server::proto::{Request, Response, WirePolicy};
use bucketrank::server::service::{Service, ServiceConfig};
use bucketrank_core::BucketOrder;
use bucketrank_testkit::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("bucketrank-lru-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The resident cap under test. Small enough that every script
/// overflows it, large enough that recency order is non-trivial.
const CAP: usize = 3;

/// `(n, per-session rankings, touches)` where each touch is
/// `(session index, kind)` — kind 0 reads, kind 1 pushes.
fn touch_scripts() -> impl Gen<Value = (usize, Vec<BucketOrder>, Vec<(usize, u8)>)> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(2..=6usize);
        let sessions = rng.gen_range(CAP + 1..=CAP + 3);
        let rankings: Vec<BucketOrder> = (0..sessions)
            .map(|_| gen::bucket_order(n, 3).generate(rng))
            .collect();
        let touches: Vec<(usize, u8)> = (0..rng.gen_range(4..=24usize))
            .map(|_| {
                (
                    rng.gen_range(0..sessions as u32) as usize,
                    rng.gen_range(0..2u32) as u8,
                )
            })
            .collect();
        (n, rankings, touches)
    })
}

#[test]
fn lru_eviction_respects_the_cap_and_evicts_exactly_the_lru() {
    check(
        "lru_eviction_respects_the_cap_and_evicts_exactly_the_lru",
        touch_scripts(),
        |(n, rankings, touches)| {
            let sessions = rankings.len();
            let dir = TempDir::new();
            let svc = Service::with_config(ServiceConfig {
                shards: 1,
                max_sessions: CAP,
                data_dir: Some(dir.0.clone()),
                checkpoint_every: u64::MAX,
            })
            .expect("durable service");
            // The mirror never evicts: state divergence after a
            // fault-in is exactly what this test exists to catch.
            let mirror = Service::new(1024);
            let name = |i: usize| format!("s{i}");

            // The model: resident sessions in recency order, LRU
            // first, plus the counter totals the real service must
            // report after every step.
            let mut recency: Vec<usize> = Vec::new();
            let mut evictions = 0u64;
            let mut recoveries = 0u64;

            for (i, ranking) in rankings.iter().enumerate() {
                if recency.len() == CAP {
                    recency.remove(0);
                    evictions += 1;
                }
                recency.push(i);
                for s in [&svc, &mirror] {
                    assert_eq!(
                        s.handle(Request::CreateSession {
                            name: name(i),
                            n: *n as u32,
                            policy: WirePolicy::Lower,
                        }),
                        Response::SessionCreated
                    );
                    assert_eq!(
                        s.handle(Request::PushVoter {
                            session: name(i),
                            ranking: ranking.clone(),
                        }),
                        Response::VoterPushed { voter: 0 }
                    );
                }
            }

            for &(i, kind) in touches {
                if let Some(pos) = recency.iter().position(|&x| x == i) {
                    recency.remove(pos);
                } else {
                    if recency.len() == CAP {
                        recency.remove(0);
                        evictions += 1;
                    }
                    recoveries += 1;
                }
                recency.push(i);

                let req = match kind {
                    0 => Request::MedianOrder { session: name(i) },
                    _ => Request::PushVoter {
                        session: name(i),
                        ranking: rankings[i].clone(),
                    },
                };
                assert_eq!(
                    svc.handle(req.clone()).encode(),
                    mirror.handle(req).encode(),
                    "touch of {} diverged from the never-evicting mirror",
                    name(i)
                );

                let stats = &svc.stats()[0];
                assert!(stats.sessions as usize <= CAP, "cap exceeded: {stats:?}");
                assert_eq!(stats.sessions as usize, recency.len());
                assert_eq!(stats.evicted as usize, sessions - recency.len());
                assert_eq!(
                    stats.evictions, evictions,
                    "a non-LRU victim was evicted (model {recency:?})"
                );
                assert_eq!(
                    stats.recoveries, recoveries,
                    "a session the model holds resident was faulted in (model {recency:?})"
                );
            }

            // Every session — resident or faulting back in right now —
            // must serve bytes identical to the mirror's.
            for i in 0..sessions {
                for req in [
                    Request::MedianOrder { session: name(i) },
                    Request::TopK {
                        session: name(i),
                        k: 1,
                    },
                ] {
                    assert_eq!(
                        svc.handle(req.clone()).encode(),
                        mirror.handle(req).encode(),
                        "faulted-back {} diverged from its pre-eviction state",
                        name(i)
                    );
                }
            }
        },
    );
}

#[test]
fn per_shard_counters_aggregate_exactly_under_concurrency() {
    const SESSIONS: usize = 8;
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PUSHES: usize = 64;
    const READS: usize = 128;

    let dir = TempDir::new();
    let svc = Service::with_config(ServiceConfig {
        shards: 4,
        max_sessions: 64,
        data_dir: Some(dir.0.clone()),
        checkpoint_every: u64::MAX,
    })
    .expect("durable service");
    let ranking = BucketOrder::from_keys(&[2, 1, 1, 3]);
    for i in 0..SESSIONS {
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: format!("t{i}"),
                n: 4,
                policy: WirePolicy::Upper,
            }),
            Response::SessionCreated
        );
    }

    let svc = &svc;
    let ranking = &ranking;
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            scope.spawn(move || {
                for j in 0..PUSHES {
                    let i = (t * PUSHES + j) % SESSIONS;
                    let resp = svc.handle(Request::PushVoter {
                        session: format!("t{i}"),
                        ranking: ranking.clone(),
                    });
                    assert!(matches!(resp, Response::VoterPushed { .. }), "{resp:?}");
                }
            });
        }
        for t in 0..READERS {
            scope.spawn(move || {
                for j in 0..READS {
                    let i = (t * READS + j) % SESSIONS;
                    // Reads race the pushes: either outcome is fine,
                    // they just must not disturb the write counters.
                    let _ = svc.handle(Request::MedianOrder {
                        session: format!("t{i}"),
                    });
                }
            });
        }
    });

    let stats = svc.stats();
    assert_eq!(stats.len(), 4, "one stats row per shard");
    assert_eq!(
        stats.iter().map(|s| s.wal_records).sum::<u64>(),
        (SESSIONS + WRITERS * PUSHES) as u64,
        "every acknowledged create and push logs exactly one record: {stats:?}"
    );
    let on_disk: u64 = (0..4)
        .map(|i| {
            std::fs::metadata(dir.0.join(format!("shard-{i}")).join("wal.log"))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        stats.iter().map(|s| s.wal_bytes).sum::<u64>(),
        on_disk,
        "wal_bytes must agree with the files on disk"
    );
    assert_eq!(stats.iter().map(|s| s.sessions).sum::<u64>(), SESSIONS as u64);
    for s in &stats {
        assert_eq!(s.evicted, 0);
        assert_eq!(s.evictions, 0, "no shard is over its cap: {s:?}");
        assert_eq!(s.recoveries, 0, "nothing was evicted, so nothing faults in");
        assert_eq!(s.checkpoints, 0, "checkpoint_every is effectively off");
    }

    // The memory-only service shares the counter plumbing but must
    // report zero durability work.
    let mem = Service::new(16);
    mem.handle(Request::CreateSession {
        name: "m".into(),
        n: 4,
        policy: WirePolicy::Upper,
    });
    mem.handle(Request::PushVoter {
        session: "m".into(),
        ranking: ranking.clone(),
    });
    for s in mem.stats() {
        assert_eq!(
            (s.wal_records, s.wal_bytes, s.checkpoints, s.evictions, s.recoveries),
            (0, 0, 0, 0, 0),
            "memory-only service logged durability work: {s:?}"
        );
    }
}
