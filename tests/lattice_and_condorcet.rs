//! Integration tests for the refinement-lattice operations and the
//! Condorcet analysis tools, at sizes beyond the unit tests' exhaustive
//! domains.

use bucketrank::aggregate::condorcet::{respects_smith_set, MajorityGraph};
use bucketrank::aggregate::kwiksort::kwiksort_best_of;
use bucketrank::aggregate::local::local_kemenize;
use bucketrank::aggregate::median::{aggregate_full, MedianPolicy};
use bucketrank::core::ops::{coarsen_adjacent, common_refinement, finest_common_coarsening};
use bucketrank::core::refine::{is_refinement, star};
use bucketrank::metrics::pairs::pair_counts;
use bucketrank::workloads::random::{random_bucket_order, random_full_ranking};
use bucketrank::BucketOrder;
use bucketrank_testkit::prelude::*;
use bucketrank_testkit::rng::Pcg32;

#[test]
fn meet_exists_iff_no_discordant_pair() {
    check(
        "meet_exists_iff_no_discordant_pair",
        gen::order_pair(10, 4),
        |(a, b)| {
            let meet = common_refinement(a, b).unwrap();
            let c = pair_counts(a, b).unwrap();
            assert_eq!(meet.is_some(), c.discordant == 0);
            if let Some(m) = meet {
                assert!(is_refinement(&m, a).unwrap());
                assert!(is_refinement(&m, b).unwrap());
                // The meet is star in both orders.
                assert_eq!(&m, &star(a, b).unwrap());
                assert_eq!(&m, &star(b, a).unwrap());
            }
        },
    );
}

#[test]
fn join_is_sound_and_absorbs() {
    check(
        "join_is_sound_and_absorbs",
        gen::order_pair(12, 5),
        |(a, b)| {
            let j = finest_common_coarsening(a, b).unwrap();
            assert!(is_refinement(a, &j).unwrap());
            assert!(is_refinement(b, &j).unwrap());
            // Absorption: join(a, a) = a; join(a, join(a, b)) = join(a, b).
            assert_eq!(&finest_common_coarsening(a, a).unwrap(), a);
            assert_eq!(finest_common_coarsening(a, &j).unwrap(), j.clone());
            // Associativity with a third order.
            let c = a.reverse();
            let left =
                finest_common_coarsening(&finest_common_coarsening(a, b).unwrap(), &c).unwrap();
            let right =
                finest_common_coarsening(a, &finest_common_coarsening(b, &c).unwrap()).unwrap();
            assert_eq!(left, right);
        },
    );
}

#[test]
fn every_coarsening_is_an_adjacent_merge() {
    check(
        "every_coarsening_is_an_adjacent_merge",
        gen::bucket_order(8, 8),
        |a| {
            // Merging adjacent buckets always yields something `a` refines.
            let t = a.num_buckets();
            if t >= 2 {
                let runs = vec![2usize]
                    .into_iter()
                    .chain(std::iter::repeat_n(1, t - 2))
                    .collect::<Vec<_>>();
                let c = coarsen_adjacent(a, &runs).unwrap();
                assert!(is_refinement(a, &c).unwrap());
                assert_eq!(c.num_buckets(), t - 1);
            }
        },
    );
}

#[test]
fn median_full_respects_condorcet_winner_usually_and_kemenized_always() {
    // Dwork et al.: local Kemenization guarantees the (adjacent) extended
    // Condorcet property; we additionally check Smith-set respect for the
    // locally-Kemenized median on profiles with a clear two-tier
    // structure.
    let mut rng = Pcg32::seed_from_u64(201);
    let mut smith_ok = 0;
    let mut trials = 0;
    for _ in 0..40 {
        let n = rng.gen_range(4..=8);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_full_ranking(&mut rng, n)).collect();
        let g = MajorityGraph::build(&inputs).unwrap();
        let med = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
        let fixed = local_kemenize(&med, &inputs).unwrap();
        // Adjacent criterion always holds after local Kemenization.
        assert_eq!(g.adjacent_condorcet_violation(&fixed), None);
        trials += 1;
        if respects_smith_set(&g, &fixed).unwrap() {
            smith_ok += 1;
        }
    }
    // The Smith property is not guaranteed by adjacent-only fixes, but it
    // should hold on the strong majority of random profiles.
    assert!(
        smith_ok * 10 >= trials * 8,
        "Smith-set respect too rare: {smith_ok}/{trials}"
    );
}

#[test]
fn kwiksort_respects_condorcet_winner() {
    // A pivot algorithm always puts a Condorcet winner first: the winner
    // beats every pivot it meets, so it keeps moving to the "ahead" side.
    let mut rng = Pcg32::seed_from_u64(202);
    let mut checked = 0;
    for seed in 0..60u64 {
        let n = rng.gen_range(4..=8);
        let inputs: Vec<BucketOrder> =
            (0..5).map(|_| random_bucket_order(&mut rng, n)).collect();
        let g = MajorityGraph::build(&inputs).unwrap();
        let Some(w) = g.condorcet_winner() else {
            continue;
        };
        checked += 1;
        let out = kwiksort_best_of(&inputs, seed, 2).unwrap();
        assert_eq!(
            out.as_permutation().unwrap()[0],
            w,
            "seed {seed}: Condorcet winner not first"
        );
    }
    assert!(checked >= 10, "too few profiles had a Condorcet winner");
}

#[test]
fn meet_and_join_interact_with_metrics() {
    // d(a, join(a,b)) counts exactly the pairs that a orders and the join
    // ties... at minimum, the triangle through the join never
    // underestimates: d(a,b) ≤ d(a,j) + d(j,b) with equality precisely
    // for Fprof on "nested" configurations. We assert the inequalities.
    use bucketrank::metrics::footrule::fprof_x2;
    use bucketrank::metrics::kendall::kprof_x2;
    let mut rng = Pcg32::seed_from_u64(203);
    for _ in 0..100 {
        let n = rng.gen_range(2..=10);
        let a = random_bucket_order(&mut rng, n);
        let b = random_bucket_order(&mut rng, n);
        let j = finest_common_coarsening(&a, &b).unwrap();
        for d in [kprof_x2, fprof_x2] {
            let ab = d(&a, &b).unwrap();
            let aj = d(&a, &j).unwrap();
            let jb = d(&j, &b).unwrap();
            assert!(ab <= aj + jb);
        }
        if let Some(m) = common_refinement(&a, &b).unwrap() {
            for d in [kprof_x2, fprof_x2] {
                let ab = d(&a, &b).unwrap();
                assert!(d(&a, &m).unwrap() <= ab + d(&b, &m).unwrap());
            }
        }
    }
}
