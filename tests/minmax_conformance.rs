//! Differential conformance suite for minmax-objective aggregation
//! (`aggregate::minmax`): the exact branch-and-bound optimum must
//! match brute-force enumeration at small `n` — with and without class
//! constraints — the heuristic pipeline's max-cost must dominate the
//! exact optimum and stay within 2× of it on every generated case,
//! malformed or infeasible constraints must be rejected typed, and the
//! server's `MinMaxAgg` opcode must answer byte-identically to an
//! in-process mirror running the same pipeline at the wire seed.
//!
//! Independence: brute force scores candidates with
//! `metrics::kendall::kprof_x2` directly (never [`MinMaxObjective`])
//! and checks constraints by counting labels in prefixes (never
//! [`ClassConstraints::satisfied`]), so the oracle shares no code with
//! the subsystem under test.

use bucketrank::aggregate::minmax::{
    self, ClassConstraints, MinMaxObjective, WindowRule,
};
use bucketrank::aggregate::AggregateError;
use bucketrank::metrics::kendall;
use bucketrank::server::proto::{ErrorCode, Request, Response, WirePolicy, WireRule};
use bucketrank::server::{Client, Server, ServerConfig};
use bucketrank::{BucketOrder, ElementId};
use bucketrank_testkit::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The class-labeled degenerate-heavy stream shared by every property:
/// small domains so brute force stays enumerable.
fn cases() -> impl Gen<Value = (Vec<BucketOrder>, Vec<u32>)> {
    gen::classed_profile_with_degenerates(1..=5, 5, 3)
}

/// All permutations of `0..n`.
fn permutations(n: usize) -> Vec<Vec<ElementId>> {
    fn go(
        cur: &mut Vec<ElementId>,
        rest: &mut Vec<ElementId>,
        out: &mut Vec<Vec<ElementId>>,
    ) {
        if rest.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..rest.len() {
            let e = rest.remove(i);
            cur.push(e);
            go(cur, rest, out);
            cur.pop();
            rest.insert(i, e);
        }
    }
    let mut out = Vec::new();
    let mut rest: Vec<ElementId> = (0..n as ElementId).collect();
    go(&mut Vec::new(), &mut rest, &mut out);
    out
}

/// Oracle objective: max over voters of `Kprof ×2` against the
/// candidate, via the metrics crate's pairwise kernel.
fn naive_max_cost_x2(profile: &[BucketOrder], candidate: &BucketOrder) -> u64 {
    profile
        .iter()
        .map(|v| kendall::kprof_x2(candidate, v).expect("shared domain"))
        .max()
        .unwrap_or(0)
}

/// Oracle constraint check: count each rule's class inside its prefix
/// window of `perm` by hand.
fn naive_satisfies(labels: &[u32], rules: &[WindowRule], perm: &[ElementId]) -> bool {
    rules.iter().all(|r| {
        let count = perm[..r.window as usize]
            .iter()
            .filter(|&&e| labels[e as usize] == r.class)
            .count() as u32;
        (r.min..=r.max).contains(&count)
    })
}

/// A feasible but *binding* rule derived from the labels: pin element
/// 0's class to the midpoint of its achievable count range inside a
/// half-domain prefix. A single prefix rule with a target inside
/// `[max(0, T+w-n), min(T, w)]` always admits a permutation, and a
/// pinned `min == max` actually constrains the search.
fn binding_rule(labels: &[u32]) -> WindowRule {
    let n = labels.len() as u32;
    let class = labels[0];
    let total = labels.iter().filter(|&&l| l == class).count() as u32;
    let window = n.div_ceil(2);
    let lo = (total + window).saturating_sub(n);
    let hi = total.min(window);
    let target = (lo + hi) / 2;
    WindowRule {
        window,
        class,
        min: target,
        max: target,
    }
}

#[test]
fn exact_matches_brute_force_unconstrained() {
    check(
        "exact_matches_brute_force_unconstrained",
        cases(),
        |(profile, _)| {
            let n = profile[0].len();
            let brute = permutations(n)
                .into_iter()
                .map(|p| {
                    let o = BucketOrder::from_permutation(&p).unwrap();
                    naive_max_cost_x2(profile, &o)
                })
                .min()
                .unwrap();
            let (order, cost, _) = minmax::minmax_optimal_bb(profile, None).unwrap();
            assert_eq!(cost, brute, "exact optimum diverged from enumeration");
            // The returned order realizes the reported cost.
            assert_eq!(naive_max_cost_x2(profile, &order), cost);
            // ... and the objective struct agrees with the oracle on it.
            let obj = MinMaxObjective::build(profile).unwrap();
            assert_eq!(obj.max_cost_x2(&order).unwrap(), cost);
        },
    );
}

#[test]
fn exact_matches_brute_force_constrained() {
    check(
        "exact_matches_brute_force_constrained",
        cases(),
        |(profile, labels)| {
            let n = profile[0].len();
            let rules = vec![binding_rule(labels)];
            let cons = ClassConstraints::new(labels.clone(), rules.clone()).unwrap();
            assert!(cons.is_feasible(), "binding rules are feasible by construction");

            let mut brute = None;
            for p in permutations(n) {
                let o = BucketOrder::from_permutation(&p).unwrap();
                // The constraint checker agrees with the by-hand count
                // on every permutation, satisfied or not.
                let ok = naive_satisfies(labels, &rules, &p);
                assert_eq!(cons.satisfied(&o).unwrap(), ok, "satisfied() diverged on {p:?}");
                if ok {
                    let c = naive_max_cost_x2(profile, &o);
                    brute = Some(brute.map_or(c, |b: u64| b.min(c)));
                }
            }
            let brute = brute.expect("feasible rule set admits a permutation");

            let (order, cost, _) = minmax::minmax_optimal_bb(profile, Some(&cons)).unwrap();
            assert_eq!(cost, brute, "constrained optimum diverged from enumeration");
            assert_eq!(naive_max_cost_x2(profile, &order), cost);
            assert!(cons.satisfied(&order).unwrap(), "exact output violates its constraints");
        },
    );
}

#[test]
fn heuristic_dominates_exact_and_stays_within_2x() {
    check(
        "heuristic_dominates_exact_and_stays_within_2x",
        cases(),
        |(profile, labels)| {
            // Unconstrained.
            let (_, exact, _) = minmax::minmax_optimal_bb(profile, None).unwrap();
            let (order, heur) =
                minmax::minmax_aggregate(profile, None, minmax::DEFAULT_SEED).unwrap();
            assert_eq!(naive_max_cost_x2(profile, &order), heur);
            assert!(heur >= exact, "heuristic {heur} below the optimum {exact}");
            assert!(heur <= 2 * exact, "heuristic {heur} beyond 2× optimum {exact}");

            // Constrained by the same binding rule as the exact lane.
            let cons =
                ClassConstraints::new(labels.clone(), vec![binding_rule(labels)]).unwrap();
            let (_, exact_c, _) = minmax::minmax_optimal_bb(profile, Some(&cons)).unwrap();
            let (order_c, heur_c) =
                minmax::minmax_aggregate(profile, Some(&cons), minmax::DEFAULT_SEED).unwrap();
            assert!(cons.satisfied(&order_c).unwrap(), "heuristic output violates constraints");
            assert_eq!(naive_max_cost_x2(profile, &order_c), heur_c);
            assert!(heur_c >= exact_c);
            assert!(heur_c <= 2 * exact_c, "constrained heuristic {heur_c} beyond 2× {exact_c}");
        },
    );
}

#[test]
fn constraint_violations_are_rejected_typed() {
    let profile = vec![
        BucketOrder::from_keys(&[0, 1, 2, 3]),
        BucketOrder::from_keys(&[1, 1, 2, 2]),
    ];
    let rule = |window, class, min, max| WindowRule { window, class, min, max };

    // Labels not covering the domain: a shape fault, typed as the
    // domain mismatch every aggregator uses.
    let cons = ClassConstraints::new(vec![0, 0, 1], vec![rule(1, 0, 0, 1)]).unwrap();
    for err in [
        minmax::minmax_aggregate(&profile, Some(&cons), 0).unwrap_err(),
        minmax::minmax_optimal_bb(&profile, Some(&cons)).unwrap_err(),
    ] {
        assert_eq!(err, AggregateError::DomainMismatch { expected: 4, found: 3 });
    }

    // Windows outside 1..=n.
    for w in [0, 5] {
        assert_eq!(
            ClassConstraints::new(vec![0; 4], vec![rule(w, 0, 0, 1)]).unwrap_err(),
            AggregateError::InvalidConstraintWindow { index: 0, window: w as usize, domain_size: 4 }
        );
    }

    // min > max, and max beyond the window.
    assert_eq!(
        ClassConstraints::new(vec![0; 4], vec![rule(2, 0, 2, 1)]).unwrap_err(),
        AggregateError::InvalidConstraintBounds { index: 0, min: 2, max: 1, window: 2 }
    );
    assert_eq!(
        ClassConstraints::new(vec![0; 4], vec![rule(2, 0, 0, 3)]).unwrap_err(),
        AggregateError::InvalidConstraintBounds { index: 0, min: 0, max: 3, window: 2 }
    );

    // A rule naming a class no candidate carries.
    assert_eq!(
        ClassConstraints::new(vec![0, 0, 1, 1], vec![rule(2, 0, 0, 1), rule(2, 9, 1, 1)])
            .unwrap_err(),
        AggregateError::UnknownClass { index: 1, class: 9 }
    );

    // Well-formed but unsatisfiable: every candidate is class 0, yet
    // the first position must not be.
    let cons = ClassConstraints::new(vec![0; 4], vec![rule(1, 0, 0, 0)]).unwrap();
    assert!(!cons.is_feasible());
    for err in [
        minmax::minmax_aggregate(&profile, Some(&cons), 0).unwrap_err(),
        minmax::minmax_optimal_bb(&profile, Some(&cons)).unwrap_err(),
        cons.repair(&BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap())
            .unwrap_err(),
    ] {
        assert_eq!(err, AggregateError::InfeasibleConstraints);
    }
}

/// The service's error mapping, mirrored locally so error replies are
/// byte-predictable (`service::agg_error` is the server side of this
/// contract; constraint faults fall through to `BadRequest`).
fn expected_agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::NoInputs => ErrorCode::NoVoters,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        AggregateError::InvalidK { .. } => ErrorCode::InvalidK,
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::TooManyVoters { .. } => ErrorCode::TooManyVoters,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[test]
fn minmax_agg_replies_are_byte_identical_to_the_in_process_mirror() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let case = AtomicUsize::new(0);

    check(
        "minmax_agg_replies_are_byte_identical_to_the_in_process_mirror",
        cases(),
        |(profile, labels)| {
            let seq = case.fetch_add(1, Ordering::Relaxed);
            let n = profile[0].len();
            let session = format!("minmax-{seq}");
            let mut client = Client::connect(addr).expect("connect");
            client
                .create_session(&session, n, WirePolicy::Lower)
                .expect("create");
            for r in profile {
                client.push_voter(&session, r).expect("push");
            }

            let expect_bytes = |client: &mut Client, req: &Request, expected: &Response| {
                let raw = client.call_raw(req).expect("transport");
                assert_eq!(
                    raw,
                    expected.encode(),
                    "reply to {req:?} diverged from the in-process mirror"
                );
            };

            // Unconstrained: empty labels and rules on the wire.
            let expected =
                match minmax::minmax_aggregate(profile, None, minmax::DEFAULT_SEED) {
                    Ok((order, cost_x2)) => Response::RankingCost { order, cost_x2 },
                    Err(e) => expected_agg_error(&e),
                };
            expect_bytes(
                &mut client,
                &Request::MinMaxAgg {
                    session: session.clone(),
                    labels: vec![],
                    rules: vec![],
                },
                &expected,
            );

            // Constrained by the binding rule, feasible by construction.
            let rule = binding_rule(labels);
            let cons = ClassConstraints::new(labels.clone(), vec![rule]).unwrap();
            let expected =
                match minmax::minmax_aggregate(profile, Some(&cons), minmax::DEFAULT_SEED) {
                    Ok((order, cost_x2)) => Response::RankingCost { order, cost_x2 },
                    Err(e) => expected_agg_error(&e),
                };
            expect_bytes(
                &mut client,
                &Request::MinMaxAgg {
                    session: session.clone(),
                    labels: labels.clone(),
                    rules: vec![WireRule {
                        window: rule.window,
                        class: rule.class,
                        min: rule.min,
                        max: rule.max,
                    }],
                },
                &expected,
            );

            // Infeasible rules come back as the typed constraint
            // error, byte-for-byte: every candidate carries one class,
            // yet the first position must not.
            let all_one = vec![labels[0]; n];
            let bad = WireRule {
                window: 1,
                class: labels[0],
                min: 0,
                max: 0,
            };
            let cons_bad = ClassConstraints::new(
                all_one.clone(),
                vec![WindowRule {
                    window: 1,
                    class: labels[0],
                    min: 0,
                    max: 0,
                }],
            )
            .expect("well-formed rule, infeasible only");
            let expected = expected_agg_error(
                &minmax::minmax_aggregate(profile, Some(&cons_bad), minmax::DEFAULT_SEED)
                    .expect_err("excluding the head of a single-class domain is infeasible"),
            );
            expect_bytes(
                &mut client,
                &Request::MinMaxAgg {
                    session: session.clone(),
                    labels: all_one,
                    rules: vec![bad],
                },
                &expected,
            );

            client.drop_session(&session).expect("drop");
        },
    );

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert!(stats.requests > 0);
}
