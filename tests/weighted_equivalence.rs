//! Property suite for the weighted metric family: the weighted
//! footrule (arXiv 1207.2541) and the top-difference distance
//! (arXiv 2403.15198) as implemented in `metrics::weighted`.
//!
//! The proof burden, in order:
//!
//! * **Exact collapse** — with `w ≡ 1` the weighted footrule equals
//!   `fprof_x2` bit-for-bit on every bucket-order pair, uniform
//!   `w ≡ c` equals `c · fprof_x2`, and on full rankings the
//!   top-difference is exactly `fprof_x2 / 2`.
//! * **Theorem-7-style bounded equivalence at unit weights** —
//!   `top_diff ≤ weighted_footrule_x2 ≤ 2·top_diff + n`. (The left
//!   bound is a *unit-weight* fact: a single heavy weight breaks it
//!   even on full rankings, so no general-weight analogue is
//!   asserted.)
//! * **Metric axioms for arbitrary weights** — identity, symmetry and
//!   the triangle inequality are structural (both distances are `L1`
//!   gaps between per-ranking score vectors), so they must hold for
//!   every weight vector, degenerate classes included.
//! * **Exact scaling and monotonicity** — `d(c·w) = c·d(w)` with no
//!   rounding; pointwise-larger weights never decrease `top_diff`
//!   (any pair), nor the weighted footrule on full rankings.
//! * **Head-domination on full rankings** — for *nonincreasing*
//!   weights, `weighted_footrule_x2 ≤ 2·top_diff` (the window-shift
//!   bound), tying the two generalizations together where both are
//!   top-heavy.
//! * **`F^(ℓ)` oracle** — on top-`k` embeddings with unit weights the
//!   weighted footrule reproduces the paper's location-parameter
//!   footrule at the canonical location `ℓ`.
//! * **Typed rejection** — every generated degenerate weight class
//!   validates; injected NaN / negative / oversized / wrong-length
//!   vectors fail with the typed error at the right index.
//! * **Wire parity** — `WeightedDist` / `TopDiff` replies off a live
//!   socket are byte-identical to an in-process mirror under random
//!   edit scripts, including every typed-error path.

use bucketrank::aggregate::dynamic::{DynamicProfile, VoterId};
use bucketrank::aggregate::{AggregateError, MedianPolicy};
use bucketrank::metrics::prepared::PreparedRanking;
use bucketrank::metrics::weighted::{
    location_identity_x2, top_diff, top_diff_prepared, weighted_footrule_x2,
    weighted_footrule_x2_prepared, Weights, MAX_WEIGHT,
};
use bucketrank::metrics::{footrule, MetricsError};
use bucketrank::server::proto::{ErrorCode, Request, Response, WirePolicy};
use bucketrank::server::{Client, Server, ServerConfig};
use bucketrank::BucketOrder;
use bucketrank_testkit::gen::EditOp;
use bucketrank_testkit::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Orders-with-weights stream over one domain size. Shrinks on the two
/// sides are independent, so a shrink step can desync the lengths;
/// properties skip those cases (the typed-rejection test covers them).
fn pairs_with_weights(
    n: usize,
    levels: u8,
) -> impl Gen<Value = ((BucketOrder, BucketOrder), Vec<u64>)> {
    gen::pair(
        gen::order_pair_with_degenerates(n, levels),
        gen::weights_with_degenerates(n),
    )
}

fn fits((a, _): &(BucketOrder, BucketOrder), units: &[u64]) -> Option<Weights> {
    let w = Weights::from_units(units.to_vec()).expect("generated weights validate");
    (w.len() == a.len()).then_some(w)
}

#[test]
fn unit_weights_collapse_bit_exactly() {
    check(
        "unit_weights_collapse_bit_exactly",
        gen::order_pair_with_degenerates(12, 4),
        |(a, b)| {
            let n = a.len();
            let fprof = footrule::fprof_x2(a, b).unwrap();
            assert_eq!(
                weighted_footrule_x2(a, b, &Weights::uniform(n)).unwrap(),
                fprof,
                "w ≡ 1 did not collapse: {a:?} vs {b:?}"
            );
            // Uniform w ≡ c is the exact c-multiple.
            for c in [2u64, 7] {
                let wc = Weights::uniform(n).scale(c).unwrap();
                assert_eq!(weighted_footrule_x2(a, b, &wc).unwrap(), c * fprof);
                assert_eq!(top_diff(a, b, &wc).unwrap(), c * top_diff(a, b, &Weights::uniform(n)).unwrap());
            }
        },
    );
    // On full rankings the unit-weight top difference is half the
    // (always even) profile footrule.
    check(
        "unit_weights_collapse_bit_exactly_full",
        gen::full_pair(10),
        |(a, b)| {
            let w = Weights::uniform(a.len());
            assert_eq!(
                2 * top_diff(a, b, &w).unwrap(),
                footrule::fprof_x2(a, b).unwrap(),
                "{a:?} vs {b:?}"
            );
        },
    );
}

#[test]
fn theorem7_style_bounds_hold_at_unit_weights() {
    // Per element, the doubled position is 2A − δ with δ ∈ {0, 1} and A
    // the ceiling average rank, so |ΔA| ≤ |Δpos| ≤ 2|ΔA| + 1. Summed:
    // top_diff ≤ weighted_footrule_x2 ≤ 2·top_diff + n.
    check(
        "theorem7_style_bounds_hold_at_unit_weights",
        gen::order_pair_with_degenerates(12, 4),
        |(a, b)| {
            let w = Weights::uniform(a.len());
            let top = top_diff(a, b, &w).unwrap();
            let foot = weighted_footrule_x2(a, b, &w).unwrap();
            assert!(
                top <= foot && foot <= 2 * top + a.len() as u64,
                "bounds violated: top = {top}, foot_x2 = {foot}, n = {}: {a:?} vs {b:?}",
                a.len()
            );
        },
    );
}

#[test]
fn one_heavy_weight_breaks_the_lower_bound() {
    // The pinned counterexample that keeps the suite honest about why
    // the bounded equivalence is asserted at unit weights only: under
    // w = [100, 1], an adjacent swap has top_diff = 200 but weighted
    // footrule ×2 = 4 — top_diff ≰ weighted_footrule_x2 in general.
    let a = BucketOrder::from_permutation(&[0, 1]).unwrap();
    let b = BucketOrder::from_permutation(&[1, 0]).unwrap();
    let w = Weights::from_units(vec![100, 1]).unwrap();
    let top = top_diff(&a, &b, &w).unwrap();
    let foot = weighted_footrule_x2(&a, &b, &w).unwrap();
    assert_eq!((top, foot), (200, 4));
    assert!(top > foot);
}

#[test]
fn metric_axioms_hold_for_arbitrary_weights() {
    let orders = gen::triple(
        gen::bucket_order(8, 3),
        gen::bucket_order(8, 3),
        gen::bucket_order(8, 3),
    );
    check(
        "metric_axioms_hold_for_arbitrary_weights",
        gen::pair(orders, gen::weights_with_degenerates(8)),
        |((a, b, c), units)| {
            // Independent shrinking can desync domains; those cases are
            // covered by the typed-rejection property.
            if a.len() != b.len() || b.len() != c.len() || units.len() != a.len() {
                return;
            }
            let w = Weights::from_units(units.clone()).unwrap();
            for d in [weighted_footrule_x2, top_diff] {
                assert_eq!(d(a, a, &w).unwrap(), 0, "identity: {a:?}");
                assert_eq!(
                    d(a, b, &w).unwrap(),
                    d(b, a, &w).unwrap(),
                    "symmetry: {a:?} vs {b:?}"
                );
                assert!(
                    d(a, c, &w).unwrap() <= d(a, b, &w).unwrap() + d(b, c, &w).unwrap(),
                    "triangle: {a:?}, {b:?}, {c:?} under {units:?}"
                );
            }
        },
    );
}

#[test]
fn scaling_is_exact() {
    check(
        "scaling_is_exact",
        pairs_with_weights(10, 4),
        |(pair, units)| {
            let Some(w) = fits(pair, units) else { return };
            let (a, b) = pair;
            for c in [2u64, 5, 1000] {
                // Scaling can trip the overflow bound; that rejection
                // is itself typed and tested elsewhere.
                let Ok(wc) = w.scale(c) else { continue };
                assert_eq!(
                    weighted_footrule_x2(a, b, &wc).unwrap(),
                    c * weighted_footrule_x2(a, b, &w).unwrap(),
                    "footrule scaling by {c}"
                );
                assert_eq!(
                    top_diff(a, b, &wc).unwrap(),
                    c * top_diff(a, b, &w).unwrap(),
                    "top_diff scaling by {c}"
                );
            }
        },
    );
}

#[test]
fn top_diff_is_monotone_in_the_weights() {
    // Every per-element gap is the weight mass of a fixed rank window,
    // so adding weight anywhere can only grow the distance — on any
    // bucket-order pair.
    let two_weights = gen::pair(
        gen::weights_with_degenerates(10),
        gen::weights_with_degenerates(10),
    );
    check(
        "top_diff_is_monotone_in_the_weights",
        gen::pair(gen::order_pair_with_degenerates(10, 4), two_weights),
        |((a, b), (u, v))| {
            if u.len() != a.len() || v.len() != a.len() {
                return;
            }
            let sum: Vec<u64> = u.iter().zip(v).map(|(&x, &y)| x + y).collect();
            let Ok(whi) = Weights::from_units(sum) else { return };
            let hi = top_diff(a, b, &whi).unwrap();
            for lo_units in [u, v] {
                let wlo = Weights::from_units(lo_units.clone()).unwrap();
                assert!(
                    top_diff(a, b, &wlo).unwrap() <= hi,
                    "top_diff shrank when weights grew: {a:?} vs {b:?}, {lo_units:?}"
                );
            }
        },
    );
}

#[test]
fn weighted_footrule_is_monotone_on_full_rankings() {
    // On full rankings each element's gap is 2·(mass of a rank
    // interval), monotone in w. (Not true with ties: midpoints can
    // cross, so no general-weight claim is made off the full lane.)
    let two_weights = gen::pair(
        gen::weights_with_degenerates(9),
        gen::weights_with_degenerates(9),
    );
    check(
        "weighted_footrule_is_monotone_on_full_rankings",
        gen::pair(gen::full_pair(9), two_weights),
        |((a, b), (u, v))| {
            if u.len() != a.len() || v.len() != a.len() {
                return;
            }
            let sum: Vec<u64> = u.iter().zip(v).map(|(&x, &y)| x + y).collect();
            let Ok(whi) = Weights::from_units(sum) else { return };
            let hi = weighted_footrule_x2(a, b, &whi).unwrap();
            for lo_units in [u, v] {
                let wlo = Weights::from_units(lo_units.clone()).unwrap();
                assert!(weighted_footrule_x2(a, b, &wlo).unwrap() <= hi);
            }
        },
    );
}

#[test]
fn nonincreasing_weights_bound_footrule_by_top_diff_on_full_rankings() {
    // The window-shift bound: on full rankings an element moving from
    // rank r to rank s > r contributes 2·(W(s) − W(r)) to the footrule
    // and W(s−1) − W(r−1) to the top difference; for nonincreasing w
    // the left-shifted window dominates, so foot_x2 ≤ 2·top_diff.
    check(
        "nonincreasing_weights_bound_footrule_by_top_diff_on_full_rankings",
        gen::pair(gen::full_pair(9), gen::weights_with_degenerates(9)),
        |((a, b), units)| {
            if units.len() != a.len() || units.windows(2).any(|p| p[0] < p[1]) {
                return;
            }
            let w = Weights::from_units(units.clone()).unwrap();
            let foot = weighted_footrule_x2(a, b, &w).unwrap();
            let top = top_diff(a, b, &w).unwrap();
            assert!(
                foot <= 2 * top,
                "window-shift bound violated: foot_x2 = {foot}, top = {top} under {units:?}"
            );
        },
    );
}

#[test]
fn location_parameter_oracle_on_top_k_embeddings() {
    // Two random top-k lists embedded as bucket orders: the
    // unit-weight weighted footrule must reproduce both fprof_x2 and
    // the paper's F^(ℓ) at the canonical location.
    let topk_pairs = gen::from_fn(|rng| {
        let n = rng.gen_range(2..=10u32) as usize;
        let k = rng.gen_range(1..=n as u32) as usize;
        let mut elems: Vec<u32> = (0..n as u32).collect();
        // Partial Fisher–Yates: the first k entries are a uniform
        // ordered k-subset.
        for i in 0..k {
            let j = i + rng.gen_range(0..(n - i) as u32) as usize;
            elems.swap(i, j);
        }
        let sa = BucketOrder::top_k(n, &elems[..k]).expect("valid top-k");
        for i in 0..k {
            let j = i + rng.gen_range(0..(n - i) as u32) as usize;
            elems.swap(i, j);
        }
        let sb = BucketOrder::top_k(n, &elems[..k]).expect("valid top-k");
        (sa, sb, k)
    });
    check(
        "location_parameter_oracle_on_top_k_embeddings",
        topk_pairs,
        |(sa, sb, k)| {
            let w = Weights::uniform(sa.len());
            let weighted = weighted_footrule_x2(sa, sb, &w).unwrap();
            assert_eq!(weighted, footrule::fprof_x2(sa, sb).unwrap());
            assert_eq!(
                weighted,
                location_identity_x2(sa, sb, *k).unwrap(),
                "F^(ℓ) diverged at n = {}, k = {k}: {sa:?} vs {sb:?}",
                sa.len()
            );
        },
    );
}

#[test]
fn every_degenerate_class_validates_and_mutations_reject() {
    check(
        "every_degenerate_class_validates_and_mutations_reject",
        gen::weights_with_degenerates(8),
        |units| {
            // Every generated class is a valid weight vector.
            let w = Weights::from_units(units.clone()).unwrap();
            assert_eq!(w.cumulative().len(), units.len() + 1);

            // An oversized unit injected anywhere is rejected at its
            // index.
            let at = units.iter().sum::<u64>() as usize % units.len();
            let mut bad = units.clone();
            bad[at] = MAX_WEIGHT + 1;
            assert_eq!(
                Weights::from_units(bad),
                Err(MetricsError::InvalidWeight { index: at })
            );

            // The float door rejects NaN, negatives and fractions at
            // the same index.
            let floats: Vec<f64> = units.iter().map(|&u| u as f64).collect();
            for poison in [f64::NAN, -1.0, 0.5, f64::INFINITY] {
                let mut v = floats.clone();
                v[at] = poison;
                assert_eq!(
                    Weights::try_from_f64(&v),
                    Err(MetricsError::InvalidWeight { index: at }),
                    "accepted {poison}"
                );
            }
            // ...and accepts the clean vector with identical units.
            assert_eq!(Weights::try_from_f64(&floats).unwrap().units(), &units[..]);

            // A length mismatch is typed from every kernel entry point.
            let short = BucketOrder::trivial(units.len() - 1);
            let expected = MetricsError::WeightsLengthMismatch {
                weights: units.len(),
                domain: short.len(),
            };
            assert_eq!(weighted_footrule_x2(&short, &short, &w).unwrap_err(), expected);
            assert_eq!(top_diff(&short, &short, &w).unwrap_err(), expected);
            let ps = PreparedRanking::new(&short);
            assert_eq!(
                weighted_footrule_x2_prepared(&ps, &ps, &w).unwrap_err(),
                expected
            );
            assert_eq!(top_diff_prepared(&ps, &ps, &w).unwrap_err(), expected);
        },
    );
}

// ---------------------------------------------------------------------
// Wire parity: the server's weighted opcodes against an in-process
// mirror, byte for byte.
// ---------------------------------------------------------------------

/// The service's error mapping for engine failures, mirrored locally.
fn expected_agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// The service's error mapping for metrics failures (weight validation
/// and length checks), mirrored locally.
fn expected_metrics_error(e: &MetricsError) -> Response {
    let code = match e {
        MetricsError::DomainMismatch { .. } | MetricsError::WeightsLengthMismatch { .. } => {
            ErrorCode::DomainMismatch
        }
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn expect_bytes(client: &mut Client, req: &Request, expected: &Response) {
    let raw = client.call_raw(req).expect("transport");
    assert_eq!(
        raw,
        expected.encode(),
        "reply to {req:?} diverged from the in-process mirror ({expected:?})"
    );
}

/// The deterministic per-step weight schedule: cycles the degenerate
/// classes and the two rejection shapes (wrong length, invalid value),
/// so every service-side branch crosses the wire.
fn step_weights(step: usize, n: usize) -> Vec<u64> {
    match step % 6 {
        0 => vec![1; n],
        1 => (0..n).map(|p| 1u64 << (8usize.saturating_sub(p))).collect(),
        2 => {
            let k = step % n + 1;
            (0..n).map(|p| u64::from(p < k)).collect()
        }
        3 => {
            let mut w = vec![0u64; n];
            w[step % n] = 512;
            w
        }
        4 => vec![1; n + 1],          // wrong length: typed DomainMismatch
        _ => {
            let mut w = vec![1; n];
            w[step % n] = MAX_WEIGHT + 1; // invalid value: typed BadRequest
            w
        }
    }
}

#[test]
fn weighted_replies_are_byte_identical_to_the_in_process_mirror() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let case = AtomicUsize::new(0);

    check(
        "weighted_replies_are_byte_identical_to_the_in_process_mirror",
        gen::edit_script_with_degenerates(3..=12, 6, 3),
        |script| {
            let seq = case.fetch_add(1, Ordering::Relaxed);
            let n = script
                .iter()
                .find_map(|op| match op {
                    EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
                    EditOp::Remove(_) => None,
                })
                .expect("scripts always embed a ranking");
            let session = format!("wdiff-{seq}");
            let mut client = Client::connect(addr).expect("connect");
            expect_bytes(
                &mut client,
                &Request::CreateSession {
                    name: session.clone(),
                    n: n as u32,
                    policy: WirePolicy::Lower,
                },
                &Response::SessionCreated,
            );

            // The mirror: same engine, same edits, so voter ids align.
            let mut mirror = DynamicProfile::new(n, MedianPolicy::Lower);
            let mut live: Vec<(u64, BucketOrder)> = Vec::new();

            for (step, op) in script.iter().enumerate() {
                // Apply the edit on both sides (correctness of the
                // edit replies is server_loopback's business; here they
                // only have to agree so the stored rankings match).
                match op {
                    EditOp::Push(r) => {
                        if let Ok(id) = mirror.push_voter(r.clone()) {
                            live.push((id.raw(), r.clone()));
                        }
                        client
                            .call_raw(&Request::PushVoter {
                                session: session.clone(),
                                ranking: r.clone(),
                            })
                            .expect("transport");
                    }
                    EditOp::Remove(i) => {
                        let target = if live.is_empty() {
                            u64::MAX
                        } else {
                            live.remove(i % live.len()).0
                        };
                        let _ = mirror.remove_voter(VoterId::from_raw(target));
                        client
                            .call_raw(&Request::RemoveVoter {
                                session: session.clone(),
                                voter: target,
                            })
                            .expect("transport");
                    }
                    EditOp::Replace(i, r) => {
                        let target = if live.is_empty() {
                            u64::MAX
                        } else {
                            let k = i % live.len();
                            live[k].1 = r.clone();
                            live[k].0
                        };
                        let _ = mirror.replace_voter(VoterId::from_raw(target), r.clone());
                        client
                            .call_raw(&Request::ReplaceVoter {
                                session: session.clone(),
                                voter: target,
                                ranking: r.clone(),
                            })
                            .expect("transport");
                    }
                }

                // Both weighted opcodes between the oldest and newest
                // live voters, under the scheduled weight vector.
                let units = step_weights(step, n);
                let (va, vb) = match (live.first(), live.last()) {
                    (Some(a), Some(b)) => (a.0, b.0),
                    _ => (u64::MAX, u64::MAX),
                };
                let lookup = |id: u64| live.iter().find(|(i, _)| *i == id).map(|(_, r)| r);
                for top in [false, true] {
                    // The service's evaluation order, mirrored: resolve
                    // both voters, then validate the weights, then run
                    // the prepared kernel.
                    let expected = match (lookup(va), lookup(vb)) {
                        (Some(a), Some(b)) => match Weights::from_units(units.clone()) {
                            Ok(w) => {
                                let pa = PreparedRanking::new(a);
                                let pb = PreparedRanking::new(b);
                                let value = if top {
                                    top_diff_prepared(&pa, &pb, &w)
                                } else {
                                    weighted_footrule_x2_prepared(&pa, &pb, &w)
                                };
                                match value {
                                    Ok(value) => Response::CostX2 { value },
                                    Err(e) => expected_metrics_error(&e),
                                }
                            }
                            Err(e) => expected_metrics_error(&e),
                        },
                        _ => expected_agg_error(&AggregateError::UnknownVoter { id: va }),
                    };
                    let req = if top {
                        Request::TopDiff {
                            session: session.clone(),
                            voter_a: va,
                            voter_b: vb,
                            weights: units.clone(),
                        }
                    } else {
                        Request::WeightedDist {
                            session: session.clone(),
                            voter_a: va,
                            voter_b: vb,
                            weights: units.clone(),
                        }
                    };
                    expect_bytes(&mut client, &req, &expected);
                }
            }

            expect_bytes(
                &mut client,
                &Request::DropSession {
                    name: session.clone(),
                },
                &Response::SessionDropped,
            );
        },
    );

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert!(stats.requests > 0);
}

#[test]
fn typed_client_methods_round_trip_the_weighted_opcodes() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.create_session("wk", 4, WirePolicy::Lower).expect("create");
    let a = BucketOrder::from_keys(&[1, 2, 3, 4]);
    let b = BucketOrder::from_keys(&[4, 3, 2, 1]);
    let va = c.push_voter("wk", &a).expect("push");
    let vb = c.push_voter("wk", &b).expect("push");
    let units = [8u64, 4, 2, 1];
    let w = Weights::from_units(units.to_vec()).unwrap();
    assert_eq!(
        c.weighted_dist_x2("wk", va, vb, &units).expect("weighted dist"),
        weighted_footrule_x2(&a, &b, &w).unwrap()
    );
    assert_eq!(
        c.top_diff("wk", va, vb, &units).expect("top diff"),
        top_diff(&a, &b, &w).unwrap()
    );
    server.shutdown();
}
