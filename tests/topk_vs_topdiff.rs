//! Differential suite relating the paper's top-`k` machinery
//! (`metrics::topk`, active-domain constructions from Fagin et al.) to
//! the new top-difference kernel (`metrics::weighted::top_diff`,
//! arXiv 2403.15198) on shared inputs.
//!
//! The load-bearing identity: embed two top-`K` lists over a fixed
//! `n`-element domain as bucket orders and weight the top-difference
//! with the `K`-step vector (`w_p = 1` for `p ≤ K`, else `0`). Then
//!
//! ```text
//! fprof_x2 = 2·top_diff + (n − K − 1)·z
//! ```
//!
//! where `z` counts the elements appearing in **exactly one** of the
//! two top sets: element-wise, a both-lists element contributes
//! `2·|Δrank|` to each side, while a one-list element contributes its
//! full displacement to the footrule but only the `K`-window part to
//! the step-weighted top difference — the gap is exactly `n − K − 1`
//! per such element. At `K = n` the step vector is uniform, `z = 0`,
//! and the two metrics agree exactly (factor 2).
//!
//! The suite pins where they agree (full-domain unions, `K = n`), the
//! identity itself on random top-`K` pairs, and a divergence witness
//! showing the active-domain `topk` kernels and the fixed-domain
//! top-difference measure genuinely different things once unranked
//! tail elements exist.

use bucketrank::metrics::topk::{
    active_domain, as_bucket_orders, fprof_x2_topk, kprof_x2_topk, TopKList,
};
use bucketrank::metrics::weighted::{top_diff, weighted_footrule_x2, Weights};
use bucketrank::metrics::footrule;
use bucketrank::{BucketOrder, ElementId};
use bucketrank_testkit::prelude::*;

/// The `K`-step weight vector over an `n`-element domain.
fn step_weights(n: usize, k: usize) -> Weights {
    Weights::from_units((0..n).map(|p| u64::from(p < k)).collect()).unwrap()
}

/// Two random ordered `k`-subsets of `0..n`, as raw element lists.
fn topk_pairs() -> impl Gen<Value = (usize, usize, Vec<ElementId>, Vec<ElementId>)> {
    gen::from_fn(|rng| {
        let n = rng.gen_range(2..=10u32) as usize;
        let k = rng.gen_range(1..=n as u32) as usize;
        let mut draw = || {
            let mut elems: Vec<ElementId> = (0..n as ElementId).collect();
            for i in 0..k {
                let j = i + rng.gen_range(0..(n - i) as u32) as usize;
                elems.swap(i, j);
            }
            elems.truncate(k);
            elems
        };
        (n, k, draw(), draw())
    })
}

/// `z`: the number of elements in exactly one of the two top sets.
fn exactly_one(a: &[ElementId], b: &[ElementId]) -> u64 {
    let one_sided = |x: &[ElementId], y: &[ElementId]| {
        x.iter().filter(|e| !y.contains(e)).count() as u64
    };
    one_sided(a, b) + one_sided(b, a)
}

#[test]
fn step_weighted_top_diff_accounts_for_fprof_up_to_the_tail_term() {
    check(
        "step_weighted_top_diff_accounts_for_fprof_up_to_the_tail_term",
        topk_pairs(),
        |(n, k, ea, eb)| {
            let (n, k) = (*n, *k);
            let sa = BucketOrder::top_k(n, ea).expect("valid top-k");
            let sb = BucketOrder::top_k(n, eb).expect("valid top-k");
            let w = step_weights(n, k);
            let top = top_diff(&sa, &sb, &w).unwrap();
            let fprof = footrule::fprof_x2(&sa, &sb).unwrap();
            let z = exactly_one(ea, eb);
            assert_eq!(
                fprof,
                2 * top + (n as u64 - k as u64).saturating_sub(1) * z,
                "identity violated at n = {n}, k = {k}: {ea:?} vs {eb:?} \
                 (top = {top}, fprof_x2 = {fprof}, z = {z})"
            );
            // The step-weighted footrule sees only the K-window too,
            // and on these embeddings it is never above the unweighted
            // profile footrule.
            assert!(weighted_footrule_x2(&sa, &sb, &w).unwrap() <= fprof);
        },
    );
}

#[test]
fn full_k_collapses_to_exact_agreement() {
    // K = n: the step vector is uniform, z = 0, and both lanes of the
    // identity collapse — fprof_x2 = 2·top_diff, bit-exact.
    check(
        "full_k_collapses_to_exact_agreement",
        gen::full_pair(8),
        |(a, b)| {
            let w = step_weights(a.len(), a.len());
            assert_eq!(
                footrule::fprof_x2(a, b).unwrap(),
                2 * top_diff(a, b, &w).unwrap()
            );
        },
    );
}

#[test]
fn active_domain_kernels_agree_when_the_union_covers_the_domain() {
    // When the two top sets jointly cover all n elements, the
    // active-domain embedding and the fixed-domain embedding are the
    // same construction up to element relabeling, and both footrule
    // kernels are label-invariant sums — so `metrics::topk` agrees
    // with the fixed-domain path, and the identity ties it to
    // `top_diff`.
    check(
        "active_domain_kernels_agree_when_the_union_covers_the_domain",
        topk_pairs(),
        |(n, k, ea, eb)| {
            let (n, k) = (*n, *k);
            let la = TopKList::new(ea.clone()).unwrap();
            let lb = TopKList::new(eb.clone()).unwrap();
            if active_domain(&la, &lb).len() != n {
                return; // covered by the divergence witness below
            }
            let sa = BucketOrder::top_k(n, ea).unwrap();
            let sb = BucketOrder::top_k(n, eb).unwrap();
            let fixed = footrule::fprof_x2(&sa, &sb).unwrap();
            assert_eq!(fprof_x2_topk(&la, &lb).unwrap(), fixed);
            let top = top_diff(&sa, &sb, &step_weights(n, k)).unwrap();
            assert_eq!(
                fixed,
                2 * top + (n as u64 - k as u64).saturating_sub(1) * exactly_one(ea, eb)
            );
            // Sanity: the active-domain embedding really is the same
            // shape (same sorted position multiset).
            let (ta, tb) = as_bucket_orders(&la, &lb);
            assert_eq!(ta.len(), n);
            assert_eq!(
                kprof_x2_topk(&la, &lb).unwrap(),
                bucketrank::metrics::kendall::kprof_x2(&sa, &sb).unwrap()
            );
            assert_eq!(tb.len(), n);
        },
    );
}

#[test]
fn unranked_tail_elements_are_where_the_two_families_diverge() {
    // The pinned witness: disjoint top-1 lists over n = 5. The
    // active-domain kernel sees a 2-element universe (each list's
    // element, then the other's), while the fixed-domain embedding
    // keeps all five — three of them unranked by *both* lists.
    let la = TopKList::new(vec![0]).unwrap();
    let lb = TopKList::new(vec![4]).unwrap();
    assert_eq!(active_domain(&la, &lb).len(), 2);

    let sa = BucketOrder::top_k(5, &[0]).unwrap();
    let sb = BucketOrder::top_k(5, &[4]).unwrap();

    // Active domain: both elements swap between rank 1 and the
    // (single-slot) bottom bucket — fprof_x2 = 2·|1 − 2|·2 = 4.
    let active = fprof_x2_topk(&la, &lb).unwrap();
    assert_eq!(active, 4);

    // Fixed domain: each list's element travels from rank 1 to the
    // bottom bucket spanning ranks 2..=5 (half-unit gap 5 each way).
    let fixed = footrule::fprof_x2(&sa, &sb).unwrap();
    assert_eq!(fixed, 10);
    assert_ne!(active, fixed, "tail elements must change the footrule");

    // The step-weighted top difference ignores everything below the
    // cut: each displaced element contributes exactly its K-window
    // mass (1 each), and the identity reconciles the gap through z.
    let top = top_diff(&sa, &sb, &step_weights(5, 1)).unwrap();
    assert_eq!(top, 2);
    let z = exactly_one(&[0], &[4]);
    assert_eq!(z, 2);
    assert_eq!(fixed, 2 * top + (5 - 1 - 1) * z);

    // And with *uniform* weights the top difference does see the tail:
    // each displaced element now pays |ΔA| = 3 (ceiling-average rank 1
    // vs 4), strictly more than its step-weighted charge of 1, inside
    // the unit-weight sandwich top ≤ fprof_x2 ≤ 2·top + n.
    let uniform_top = top_diff(&sa, &sb, &Weights::uniform(5)).unwrap();
    assert_eq!(uniform_top, 6);
    assert!(uniform_top <= fixed && fixed <= 2 * uniform_top + 5);
}
