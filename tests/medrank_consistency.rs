//! End-to-end consistency of the access layer: MEDRANK (online, sorted
//! access) against offline median aggregation, access-cost bounds, and
//! the full fielded-search flow.

use bucketrank::access::medrank::{medrank_top_k, medrank_winner, top_k_from_medians};
use bucketrank::access::query::PreferenceQuery;
use bucketrank::access::RankingCursor;
use bucketrank::aggregate::dynamic::DynamicProfile;
use bucketrank::aggregate::median::{median_positions, MedianPolicy};
use bucketrank::workloads::datasets::{flight_query_specs, flights, restaurant_query_specs, restaurants};
use bucketrank::workloads::random::{random_few_valued, random_full_ranking};
use bucketrank::{BucketOrder, Pos};
use bucketrank_testkit::rng::Pcg32;
use bucketrank_testkit::rng::{Rng, SeedableRng};

/// MEDRANK sees inputs through cursors that refine ties by element id;
/// its guarantees are therefore stated against the medians of those
/// *refined* positions. A strict majority (`count > m/2`) corresponds to
/// the **upper** median (for odd `m` the two medians coincide).
/// Every property in this suite is simultaneously flushed through the
/// streaming engine: the medians are computed both by the batch
/// rebuild and by a `DynamicProfile` built from incremental pushes,
/// and the two must agree exactly before either is used.
fn refined_median_positions(inputs: &[BucketOrder]) -> Vec<Pos> {
    let refined: Vec<BucketOrder> = inputs
        .iter()
        .map(BucketOrder::arbitrary_full_refinement)
        .collect();
    let batch = median_positions(&refined, MedianPolicy::Upper).unwrap();
    let (dp, _) = DynamicProfile::from_profile(&refined, MedianPolicy::Upper).unwrap();
    assert_eq!(
        dp.median_positions().unwrap(),
        batch,
        "incrementally maintained medians diverged from the batch rebuild"
    );
    batch
}

#[test]
fn winner_has_minimal_refined_median() {
    let mut rng = Pcg32::seed_from_u64(21);
    for _ in 0..200 {
        let n = rng.gen_range(2..=12);
        let m = rng.gen_range(1..=7usize) | 1; // odd for unique medians
        let inputs: Vec<BucketOrder> = (0..m)
            .map(|_| {
                let levels = rng.gen_range(1..=4);
                random_few_valued(&mut rng, n, levels)
            })
            .collect();
        let (w, _) = medrank_winner(&inputs).unwrap();
        let f = refined_median_positions(&inputs);
        let min = f.iter().min().copied().unwrap();
        assert_eq!(
            f[w as usize], min,
            "winner {w} lacks the minimal refined median: {f:?} inputs {inputs:?}"
        );
    }
}

#[test]
fn access_depth_matches_winner_median() {
    // MEDRANK's stopping round for the winner is exactly its median
    // refined position: a majority of cursors must descend that far, and
    // no further reading is performed after the k-th winner emerges.
    let mut rng = Pcg32::seed_from_u64(22);
    for _ in 0..100 {
        let n = rng.gen_range(2..=10);
        let m = rng.gen_range(1..=5usize) | 1;
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_full_ranking(&mut rng, n)).collect();
        let (w, stats) = medrank_winner(&inputs).unwrap();
        let f = refined_median_positions(&inputs);
        let med_rank = (f[w as usize].half_units() / 2) as u64;
        assert_eq!(
            stats.max_depth(),
            med_rank,
            "depth {} ≠ median rank {med_rank}",
            stats.max_depth()
        );
    }
}

#[test]
fn top_k_winners_match_offline_median_set() {
    // The *set* of top-k winners agrees with the k smallest refined
    // medians whenever those are strictly separated from the rest.
    let mut rng = Pcg32::seed_from_u64(23);
    let mut checked = 0;
    for _ in 0..300 {
        let n = rng.gen_range(3..=9);
        let m = rng.gen_range(1..=5usize) | 1;
        let k = rng.gen_range(1..=n);
        let inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_full_ranking(&mut rng, n)).collect();
        let f = refined_median_positions(&inputs);
        let mut sorted = f.clone();
        sorted.sort();
        if k < n && sorted[k - 1] == sorted[k] {
            continue; // boundary tie: either resolution is valid
        }
        checked += 1;
        let r = medrank_top_k(&inputs, k).unwrap();
        let mut expected: Vec<u32> = (0..n as u32).collect();
        expected.sort_by_key(|&e| f[e as usize]);
        let mut got = r.top.clone();
        got.sort_unstable();
        let mut want = expected[..k].to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "inputs {inputs:?} k {k}");
    }
    assert!(checked > 150, "too few unambiguous instances: {checked}");
}

#[test]
fn dynamic_engine_serves_medrank_top_k_without_access() {
    // A streaming engine that maintains medians under voter churn can
    // answer MEDRANK's query with zero sorted accesses: wherever the
    // k-th median is strictly separated, `top_k_from_medians` over the
    // dynamic medians selects the same winner set as the online
    // algorithm — including after in-place replace edits.
    let mut rng = Pcg32::seed_from_u64(28);
    let mut checked = 0;
    for round in 0..200 {
        let n = rng.gen_range(3..=9);
        let m = rng.gen_range(1..=5usize) | 1;
        let k = rng.gen_range(1..=n);
        let mut inputs: Vec<BucketOrder> =
            (0..m).map(|_| random_full_ranking(&mut rng, n)).collect();
        let (mut dp, ids) =
            DynamicProfile::from_profile(&inputs, MedianPolicy::Upper).unwrap();
        // Churn: replace one voter in place every other round, so the
        // served medians come from the incremental maintenance path.
        if round % 2 == 0 {
            let fresh = random_full_ranking(&mut rng, n);
            dp.replace_voter(ids[round % m], fresh.clone()).unwrap();
            inputs[round % m] = fresh;
        }
        let f = dp.median_positions().unwrap();
        assert_eq!(f, refined_median_positions(&inputs));
        let mut sorted = f.clone();
        sorted.sort();
        if k < n && sorted[k - 1] == sorted[k] {
            continue; // boundary tie: either winner set is valid
        }
        checked += 1;
        let mut served = top_k_from_medians(&f, k).unwrap();
        served.sort_unstable();
        let mut online = medrank_top_k(&inputs, k).unwrap().top;
        online.sort_unstable();
        assert_eq!(served, online, "inputs {inputs:?} k {k}");
    }
    assert!(checked > 100, "too few unambiguous instances: {checked}");
}

#[test]
fn medrank_never_reads_more_than_needed_sequentially() {
    // Depth is bounded by the round after the last winner emerged; in
    // particular never beyond n, and all sources advance in lockstep
    // (max spread 0 before exhaustion).
    let mut rng = Pcg32::seed_from_u64(24);
    for _ in 0..100 {
        let n = rng.gen_range(2..=15);
        let m = rng.gen_range(2..=6);
        let inputs: Vec<BucketOrder> = (0..m)
            .map(|_| random_few_valued(&mut rng, n, 3))
            .collect();
        let r = medrank_top_k(&inputs, 1).unwrap();
        let max = r.stats.max_depth();
        for &d in &r.stats.sorted_depth {
            assert!(d <= n as u64);
            assert_eq!(d, max, "cursors must move in lockstep");
        }
    }
}

#[test]
fn cursor_enumerates_refinement_positions() {
    // The cursor's delivery order is exactly the arbitrary full
    // refinement used by the offline comparison.
    let mut rng = Pcg32::seed_from_u64(25);
    for _ in 0..50 {
        let s = random_few_valued(&mut rng, 12, 4);
        let mut c = RankingCursor::new(&s);
        let refined = s.arbitrary_full_refinement();
        let perm = refined.as_permutation().unwrap();
        for &expect in &perm {
            assert_eq!(c.next(), Some(expect));
        }
        assert_eq!(c.next(), None);
    }
}

#[test]
fn restaurant_query_agrees_with_offline_median_on_winner() {
    let mut rng = Pcg32::seed_from_u64(26);
    let table = restaurants(&mut rng, 400);
    let q = PreferenceQuery::new(restaurant_query_specs()).with_k(1);
    let r = q.run(&table).unwrap();
    let f = refined_median_positions(&r.rankings);
    let min = f.iter().min().copied().unwrap();
    assert_eq!(f[r.top[0] as usize], min);
}

#[test]
fn flight_query_access_is_sublinear_on_average() {
    let mut rng = Pcg32::seed_from_u64(27);
    let n = 2000;
    let table = flights(&mut rng, n);
    let q = PreferenceQuery::new(flight_query_specs()).with_k(3);
    let r = q.run(&table).unwrap();
    let full_scan = (q.specs().len() * n) as u64;
    assert!(
        r.stats.total_accesses() * 2 < full_scan,
        "accesses {} not sublinear vs {}",
        r.stats.total_accesses(),
        full_scan
    );
}
