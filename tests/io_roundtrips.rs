//! Property-based round-trips for the I/O surface: ranking text format,
//! CSV loading, and the labeled profile builder.

use bucketrank::access::csv::{split_record, table_from_csv, CsvOptions};
use bucketrank::access::db::{AttrKind, AttrValue};
use bucketrank::core::parse::{display_labeled, parse_labeled_ranking_strict, parse_ranking};
use bucketrank::core::profile::{MissingPolicy, ProfileBuilder};
use bucketrank::{BucketOrder, Domain};
use proptest::prelude::*;

fn bucket_order_strategy(n: usize, levels: u8) -> impl Strategy<Value = BucketOrder> {
    prop::collection::vec(0..levels, n).prop_map(|keys| BucketOrder::from_keys(&keys))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn numeric_text_round_trip(s in bucket_order_strategy(9, 4)) {
        let text = s.display();
        let parsed = parse_ranking(&text, 9).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn labeled_text_round_trip(s in bucket_order_strategy(7, 3)) {
        let domain = Domain::from_labels((0..7).map(|i| format!("item-{i}")));
        let text = display_labeled(&s, &domain);
        let parsed = parse_labeled_ranking_strict(&text, &domain).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn csv_fields_round_trip(fields in prop::collection::vec("[a-z ,\"]{0,8}", 1..6)) {
        // Quote every field; splitting must return the originals.
        let line: String = fields
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
            .collect::<Vec<_>>()
            .join(",");
        let got = split_record(&line);
        prop_assert_eq!(got, fields);
    }

    #[test]
    fn csv_numeric_table_round_trip(
        rows in prop::collection::vec((any::<i32>(), 0u32..1000), 1..20)
    ) {
        let mut csv = String::from("a,b\n");
        for &(a, b) in &rows {
            csv.push_str(&format!("{a},{b}\n"));
        }
        let t = table_from_csv(
            &csv,
            &[AttrKind::Int, AttrKind::Int],
            CsvOptions { has_header: true },
        )
        .unwrap();
        prop_assert_eq!(t.len(), rows.len());
        for (i, &(a, b)) in rows.iter().enumerate() {
            prop_assert_eq!(t.value(i, "a"), Some(&AttrValue::Int(a as i64)));
            prop_assert_eq!(t.value(i, "b"), Some(&AttrValue::Int(b as i64)));
        }
    }

    #[test]
    fn profile_builder_total_coverage(
        mentioned in prop::collection::vec(prop::collection::vec(0u8..6, 1..5), 1..5)
    ) {
        // Arbitrary (possibly duplicated) label mentions per ranking:
        // dedup within each ranking, then every finalized ranking covers
        // the union domain under the bottom-bucket policy.
        let mut b = ProfileBuilder::new();
        for r in &mentioned {
            let mut seen = std::collections::HashSet::new();
            let labels: Vec<String> = r
                .iter()
                .filter(|&&x| seen.insert(x))
                .map(|x| format!("l{x}"))
                .collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.push_ranking(&[&refs]);
        }
        let p = b.finish(MissingPolicy::BottomBucket).unwrap();
        let n = p.domain().len();
        for r in p.rankings() {
            prop_assert_eq!(r.len(), n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Robustness: arbitrary garbage never panics the parsers — they
    /// return errors (or valid objects) for every input.
    #[test]
    fn parsers_never_panic(s in "\\PC{0,40}") {
        let _ = parse_ranking(&s, 5);
        let mut d = Domain::from_labels(["a", "b"]);
        let _ = bucketrank::core::parse::parse_labeled_ranking(&s, &mut d);
        let _ = parse_labeled_ranking_strict(&s, &d);
        let _ = split_record(&s);
        let _ = table_from_csv(&s, &[AttrKind::Int, AttrKind::Text], CsvOptions { has_header: true });
        let _ = bucketrank::access::csv::parse_schema(&s);
    }
}

#[test]
fn cli_generate_output_is_machine_readable() {
    // The CLI's generate → parse loop, exercised through the library
    // crates (the CLI itself is tested in its own crate).
    use bucketrank::workloads::random::random_bucket_order;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..20 {
        let s = random_bucket_order(&mut rng, 8);
        let text = s.display();
        assert_eq!(parse_ranking(&text, 8).unwrap(), s);
    }
}
