//! Property-based round-trips for the I/O surface: ranking text format,
//! CSV loading, and the labeled profile builder.

use bucketrank::access::csv::{split_record, table_from_csv, CsvOptions};
use bucketrank::access::db::{AttrKind, AttrValue};
use bucketrank::core::parse::{display_labeled, parse_labeled_ranking_strict, parse_ranking};
use bucketrank::core::profile::{MissingPolicy, ProfileBuilder};
use bucketrank::Domain;
use bucketrank_testkit::prelude::*;

/// The character class of the old proptest regex `[a-z ,"]`.
const CSV_FIELD_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
    's', 't', 'u', 'v', 'w', 'x', 'y', 'z', ' ', ',', '"',
];

#[test]
fn numeric_text_round_trip() {
    check("numeric_text_round_trip", gen::bucket_order(9, 4), |s| {
        let text = s.display();
        let parsed = parse_ranking(&text, 9).unwrap();
        assert_eq!(&parsed, s);
    });
}

#[test]
fn labeled_text_round_trip() {
    check("labeled_text_round_trip", gen::bucket_order(7, 3), |s| {
        let domain = Domain::from_labels((0..7).map(|i| format!("item-{i}")));
        let text = display_labeled(s, &domain);
        let parsed = parse_labeled_ranking_strict(&text, &domain).unwrap();
        assert_eq!(&parsed, s);
    });
}

#[test]
fn csv_fields_round_trip() {
    check(
        "csv_fields_round_trip",
        gen::vec_of(gen::string_from(CSV_FIELD_CHARS, 0..=8), 1..=5),
        |fields| {
            // Quote every field; splitting must return the originals.
            let line: String = fields
                .iter()
                .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
                .collect::<Vec<_>>()
                .join(",");
            let got = split_record(&line);
            assert_eq!(&got, fields);
        },
    );
}

#[test]
fn csv_numeric_table_round_trip() {
    check(
        "csv_numeric_table_round_trip",
        gen::vec_of(gen::pair(gen::i32_any(), gen::u32_in(0..=999)), 1..=19),
        |rows| {
            let mut csv = String::from("a,b\n");
            for &(a, b) in rows {
                csv.push_str(&format!("{a},{b}\n"));
            }
            let t = table_from_csv(
                &csv,
                &[AttrKind::Int, AttrKind::Int],
                CsvOptions { has_header: true },
            )
            .unwrap();
            assert_eq!(t.len(), rows.len());
            for (i, &(a, b)) in rows.iter().enumerate() {
                assert_eq!(t.value(i, "a"), Some(&AttrValue::Int(a as i64)));
                assert_eq!(t.value(i, "b"), Some(&AttrValue::Int(b as i64)));
            }
        },
    );
}

#[test]
fn profile_builder_total_coverage() {
    check(
        "profile_builder_total_coverage",
        gen::vec_of(gen::vec_of(gen::usize_in(0..=5), 1..=4), 1..=4),
        |mentioned| {
            // Arbitrary (possibly duplicated) label mentions per ranking:
            // dedup within each ranking, then every finalized ranking covers
            // the union domain under the bottom-bucket policy.
            let mut b = ProfileBuilder::new();
            for r in mentioned {
                let mut seen = std::collections::HashSet::new();
                let labels: Vec<String> = r
                    .iter()
                    .filter(|&&x| seen.insert(x))
                    .map(|x| format!("l{x}"))
                    .collect();
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                b.push_ranking(&[&refs]);
            }
            let p = b.finish(MissingPolicy::BottomBucket).unwrap();
            let n = p.domain().len();
            for r in p.rankings() {
                assert_eq!(r.len(), n);
            }
        },
    );
}

/// Robustness: arbitrary garbage never panics the parsers — they
/// return errors (or valid objects) for every input.
#[test]
fn parsers_never_panic() {
    check(
        "parsers_never_panic",
        gen::printable_string(0..=40),
        |s| {
            let _ = parse_ranking(s, 5);
            let mut d = Domain::from_labels(["a", "b"]);
            let _ = bucketrank::core::parse::parse_labeled_ranking(s, &mut d);
            let _ = parse_labeled_ranking_strict(s, &d);
            let _ = split_record(s);
            let _ = table_from_csv(
                s,
                &[AttrKind::Int, AttrKind::Text],
                CsvOptions { has_header: true },
            );
            let _ = bucketrank::access::csv::parse_schema(s);
        },
    );
}

#[test]
fn cli_generate_output_is_machine_readable() {
    // The CLI's generate → parse loop, exercised through the library
    // crates (the CLI itself is tested in its own crate).
    use bucketrank::workloads::random::random_bucket_order;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;
    let mut rng = Pcg32::seed_from_u64(9);
    for _ in 0..20 {
        let s = random_bucket_order(&mut rng, 8);
        let text = s.display();
        assert_eq!(parse_ranking(&text, 8).unwrap(), s);
    }
}
